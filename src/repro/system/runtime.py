"""High-level runtime: the user's side of the Fig. 9 model.

:class:`Runtime` wraps :class:`~repro.system.transitions.System` and plays
the role of the device: every user action (tap, back, edit, code update)
is followed by running the system back to a stable state with a valid
display, which is what the paper's always-live loop does between
interactions.  It also offers the query helpers tests and examples lean
on — find a box by its text, read the current page, snapshot the model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..boxes.tree import Box
from ..core import ast
from ..core.errors import EvalError, ReproError
from ..eval.natives import EMPTY_NATIVES
from ..eval.values import format_for_post
from ..obs.trace import NULL_TRACER
from .transitions import System


@dataclass(frozen=True)
class Fault:
    """A runtime fault recorded under the ``"record"`` fault policy.

    ``timestamp`` is wall-clock (``time.time``) at the moment the fault
    was recorded; ``vtimestamp`` is the session's *virtual-clock* time
    at the same moment, which — unlike wall time — is deterministic
    under :class:`~repro.system.services.VirtualClock` and therefore
    comparable across journal replays and re-runs of the same seeded
    chaos plan.  ``span_id`` names the tracer span of the transition
    that failed (``None`` when tracing is disabled), so a fault can be
    correlated with the span tree and the JSONL trace.
    """

    error: object
    during: str        # the transition that was executing
    timestamp: float = 0.0
    span_id: object = None
    vtimestamp: float = 0.0

    def __repr__(self):
        return "Fault({} during {})".format(self.error, self.during)


class Runtime:
    """A running, interactable program.

    >>> from repro.apps.counter import counter_code
    >>> rt = Runtime(counter_code())          # doctest: +SKIP
    >>> rt.start(); rt.tap_text("+"); rt.page_name()   # doctest: +SKIP
    """

    def __init__(
        self,
        code,
        natives=EMPTY_NATIVES,
        services=None,
        faithful=False,
        reuse_boxes=False,
        memo_render=False,
        memo_store=None,
        fault_policy="raise",
        tracer=None,
        budget=None,
        chaos=None,
        backend=None,
    ):
        if fault_policy not in ("raise", "record"):
            raise ReproError(
                "fault_policy must be 'raise' or 'record', got "
                "{!r}".format(fault_policy)
            )
        #: Observability (repro.obs): a shared tracer for spans and
        #: metrics.  The NullTracer default keeps the runtime overhead-
        #: free; pass ``Tracer()`` to collect spans queryable via
        #: :meth:`spans` / :meth:`metrics`.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.system = System(
            code,
            natives=natives,
            services=services,
            faithful=faithful,
            reuse_boxes=reuse_boxes,
            memo_render=memo_render,
            memo_store=memo_store,
            tracer=self.tracer,
            budget=budget,
            chaos=chaos,
            backend=backend,
        )
        self._started = False
        #: ``"raise"`` propagates handler/init faults to the caller (the
        #: deterministic choice for tests); ``"record"`` logs them in
        #: :attr:`faults` and keeps the system live — a user's division
        #: by zero must not take the whole live environment down.  The
        #: faulting event is consumed either way (exactly as much of it
        #: executed as the small-step semantics had reached).
        self.fault_policy = fault_policy
        self.faults = []

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Boot: STARTUP, run the start page's init, render.  Idempotent."""
        if not self._started:
            self._settle()
            self._started = True
        return self

    def step(self):
        """Fire one internal transition under the fault policy.

        The supervised single-step: budgets (fuel + virtual-clock
        deadline, :class:`~repro.resilience.supervisor.Budget`) are
        enforced by the system underneath, and under ``"record"`` a
        faulting transition is logged — with wall *and* virtual
        timestamps — instead of propagating.  Returns the rule name that
        fired (faulting or not), or ``None`` when the system is stable
        with a valid display.
        """
        if self.fault_policy == "raise":
            return self.system.step()
        attempting = self.system.enabled_internal_transition()
        try:
            return self.system.step()
        except EvalError as error:
            # The failing transition's span closed during unwinding,
            # so the tracer's last finished span names it.
            self._record_fault(error, attempting)
            if attempting == "RENDER":
                # A render fault would recur forever (the display
                # stays ⊥); show an error screen instead — the live
                # IDE's equivalent of a red exception banner.
                self._show_fault_display(error)
            return attempting  # event faults: the queue may hold more

    def _record_fault(self, error, attempting):
        self.faults.append(Fault(
            error,
            attempting,
            timestamp=time.time(),
            span_id=self.tracer.last_span_id,
            vtimestamp=self.system.services.clock.now,
        ))
        self.tracer.add("faults_recorded")

    def _settle(self):
        if self.fault_policy == "raise":
            self.system.run_to_stable()
            return
        while self.step() is not None:
            pass  # faults are recorded; the system stays live

    def _show_fault_display(self, error):
        from ..boxes.tree import make_root

        root = make_root()
        root.append_leaf(ast.Str("runtime fault while rendering:"))
        root.append_leaf(ast.Str(str(error)))
        self.system.state.display = root.freeze()
        self.system._last_valid_display = None

    # -- state access ----------------------------------------------------------

    @property
    def display(self):
        """The current box tree (valid whenever the runtime is settled)."""
        display = self.system.display
        if not isinstance(display, Box):
            raise ReproError("display is stale; call start() first")
        return display

    def page_name(self):
        """Name of the page currently on top of the stack."""
        top = self.system.state.stack.top()
        return top[0] if top else None

    def stack_pages(self):
        """Page names bottom-to-top."""
        return tuple(name for name, _ in self.system.state.stack.entries())

    def global_value(self, name):
        """Current value of a global: store entry, else declared initial.

        This mirrors rules EP-GLOBAL-1/2 — reads fall back to the initial
        value until the first assignment.
        """
        value = self.system.state.store.lookup(name)
        if value is not None:
            return value
        definition = self.system.code.global_(name)
        if definition is None:
            raise ReproError("no global named '{}'".format(name))
        return definition.init

    @property
    def trace(self):
        """All fired transitions, in order (timing-enriched: each
        :class:`~repro.system.transitions.Transition` carries ``elapsed``
        wall seconds and, when tracing is on, its ``span_id``)."""
        return tuple(self.system.trace)

    # -- observability -----------------------------------------------------

    def metrics(self):
        """Counter/gauge snapshot from the tracer (``{}`` when disabled).

        See ``docs/OBSERVABILITY.md`` for the catalog
        (``boxes_rendered``, ``memo_hits``, ``eval_steps``, …).
        """
        return self.tracer.metrics()

    def spans(self):
        """Finished tracer spans (``()`` with the default NullTracer)."""
        return self.tracer.spans()

    # -- box queries -------------------------------------------------------------

    def find_boxes(self, predicate):
        """All ``(path, box)`` pairs whose box satisfies ``predicate``."""
        return [
            (path, box)
            for path, box in self.display.walk()
            if predicate(box)
        ]

    def find_text(self, text):
        """Path of the first box posting exactly ``text``; None if absent."""
        for path, box in self.display.walk():
            for leaf in box.leaves():
                if format_for_post(leaf) == text:
                    return path
        return None

    def require_text(self, text):
        """Like :meth:`find_text` but raising — for tests and scripts."""
        path = self.find_text(text)
        if path is None:
            raise ReproError(
                "no box displays {!r}; display is:\n{}".format(
                    text, self.display.dump()
                )
            )
        return path

    def all_texts(self):
        """Every posted leaf as display text, in document order."""
        return [
            format_for_post(leaf)
            for _, box in self.display.walk()
            for leaf in box.leaves()
        ]

    def contains_text(self, text):
        return self.find_text(text) is not None

    # -- user actions ---------------------------------------------------------------

    def tap(self, path):
        """Tap the box at ``path`` (bubbles to the nearest handler)."""
        self.start()
        self.system.tap(tuple(path))
        self._settle()
        return self

    def tap_text(self, text):
        """Tap the first box displaying ``text``."""
        self.start()
        self.system.tap(self.require_text(text))
        self._settle()
        return self

    def edit(self, path, text):
        """Type ``text`` into the editable box at ``path``."""
        self.start()
        self.system.edit(tuple(path), text)
        self._settle()
        return self

    def back(self):
        """Press the device's back button."""
        self.start()
        self.system.back()
        self._settle()
        return self

    def update_code(self, new_code, natives=None):
        """Apply a live code update and re-render; returns the fix-up report.

        This is the whole point of the paper: the model state survives, the
        display is rebuilt under the new code, and the user (programmer)
        sees the effect without restarting.
        """
        self.start()
        report = self.system.update(new_code, natives=natives)
        self._settle()
        return report

    # -- rendering helpers --------------------------------------------------------------

    def screenshot(self, width=48):
        """ASCII screenshot of the current page (the Fig. 1 reproduction)."""
        from ..render.text_backend import render_text

        return render_text(self.display, width=width)
