"""Host services available to native operators.

The paper's running example issues a real web request; in this
reproduction natives run against a :class:`Services` container that holds
whatever substrates the host wires up — by default a :class:`VirtualClock`
(so benchmarks can account for simulated latency deterministically, without
sleeping) and, for the example apps, the simulated web of
:mod:`repro.stdlib.web`.

Services are *only* reachable from natives, natives carry a declared
effect, and the type system confines effectful natives to standard mode —
so render code provably never touches a service.

Both classes are **thread-safe**: the :mod:`repro.serve` session host
runs sessions on HTTP worker threads, so clock advances and substrate
registration may race.  The locks are uncontended in single-threaded use
(every test and example before the server) and cost one uncontended
acquire per operation.
"""

from __future__ import annotations

import threading

from ..core.errors import ReproError


class VirtualClock:
    """Deterministic time: advanced explicitly, never by sleeping.

    Substrates charge simulated latency by calling :meth:`advance`; the
    edit-cycle benchmark (E2) then reports *virtual* seconds per iteration,
    which is how we reproduce the paper's "waiting for the list to
    download" cost without making the test-suite slow.

    ``advance`` is atomic: ``self._now += seconds`` is a read-modify-write
    that loses updates when two server threads race it, so the clock
    serializes all mutation behind a lock.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._now = 0.0

    @property
    def now(self):
        """Current virtual time in seconds since the clock's creation."""
        with self._lock:
            return self._now

    def advance(self, seconds):
        """Advance virtual time; negative advances are rejected."""
        if seconds < 0:
            raise ReproError("cannot advance the clock by a negative amount")
        with self._lock:
            self._now += seconds
            return self._now

    def reset(self):
        with self._lock:
            self._now = 0.0


class Services:
    """A named bag of substrates, plus the ambient virtual clock."""

    def __init__(self, clock=None):
        self.clock = clock if clock is not None else VirtualClock()
        self._lock = threading.Lock()
        self._substrates = {}

    def provide(self, name, substrate):
        """Register substrate ``name`` (e.g. ``"web"``); returns it."""
        with self._lock:
            if name in self._substrates:
                raise ReproError("service '{}' already provided".format(name))
            self._substrates[name] = substrate
            return substrate

    def get(self, name):
        """Fetch substrate ``name``; raises if the host never wired it up."""
        with self._lock:
            try:
                return self._substrates[name]
            except KeyError:
                pass
        raise ReproError(
            "service '{}' is not provided — natives that need it "
            "cannot run in this configuration".format(name)
        )

    def has(self, name):
        with self._lock:
            return name in self._substrates

    def names(self):
        with self._lock:
            return tuple(self._substrates)
