"""Host services available to native operators.

The paper's running example issues a real web request; in this
reproduction natives run against a :class:`Services` container that holds
whatever substrates the host wires up — by default a :class:`VirtualClock`
(so benchmarks can account for simulated latency deterministically, without
sleeping) and, for the example apps, the simulated web of
:mod:`repro.stdlib.web`.

Services are *only* reachable from natives, natives carry a declared
effect, and the type system confines effectful natives to standard mode —
so render code provably never touches a service.
"""

from __future__ import annotations

from ..core.errors import ReproError


class VirtualClock:
    """Deterministic time: advanced explicitly, never by sleeping.

    Substrates charge simulated latency by calling :meth:`advance`; the
    edit-cycle benchmark (E2) then reports *virtual* seconds per iteration,
    which is how we reproduce the paper's "waiting for the list to
    download" cost without making the test-suite slow.
    """

    def __init__(self):
        self._now = 0.0

    @property
    def now(self):
        """Current virtual time in seconds since the clock's creation."""
        return self._now

    def advance(self, seconds):
        """Advance virtual time; negative advances are rejected."""
        if seconds < 0:
            raise ReproError("cannot advance the clock by a negative amount")
        self._now += seconds
        return self._now

    def reset(self):
        self._now = 0.0


class Services:
    """A named bag of substrates, plus the ambient virtual clock."""

    def __init__(self, clock=None):
        self.clock = clock if clock is not None else VirtualClock()
        self._substrates = {}

    def provide(self, name, substrate):
        """Register substrate ``name`` (e.g. ``"web"``); returns it."""
        if name in self._substrates:
            raise ReproError("service '{}' already provided".format(name))
        self._substrates[name] = substrate
        return substrate

    def get(self, name):
        """Fetch substrate ``name``; raises if the host never wired it up."""
        try:
            return self._substrates[name]
        except KeyError:
            raise ReproError(
                "service '{}' is not provided — natives that need it "
                "cannot run in this configuration".format(name)
            )

    def has(self, name):
        return name in self._substrates

    def names(self):
        return tuple(self._substrates)
