"""The system state ``σ = (C, D, S, P, Q)`` (Fig. 7).

* ``C`` — the code, a :class:`repro.core.defs.Code`;
* ``D`` — the display: a frozen box tree or the stale marker ``⊥``;
* ``S`` — the store: global-variable values;
* ``P`` — the page stack of ``(page, argument)`` pairs;
* ``Q`` — the event queue (:mod:`repro.system.events`).

The paper models ``S`` as a sequence of ``[g ↦ v]`` pairs where the
rightmost occurrence of a key wins; an insertion-ordered dict is
observably equivalent (lookup sees the latest assignment) and is what an
"actual implementation would use" by the paper's own remark.  Note that
the store starts *empty*: a global's declared initial value is read
lazily from the code by rule EP-GLOBAL-2 until the first assignment
creates an entry.

A state is **stable** when the event queue is empty and the page stack is
non-empty; stable states are where user actions (TAP, BACK) and code
updates (UPDATE) may occur.
"""

from __future__ import annotations

import itertools

from ..boxes.tree import Box, STALE
from ..core import ast
from ..core.defs import Code
from ..core.errors import ReproError
from .events import EventQueue

#: Write-version source for *all* stores in the process.  Globally unique
#: monotonic ticks (rather than a per-store counter) mean a version number
#: names one specific assignment event: the fix-up of Fig. 12 builds a
#: *new* store on every UPDATE, and if each store restarted its own
#: counter, version 7 of ``clicks`` before an edit and version 7 after it
#: could stamp different values — and the incremental memo's O(1) probe
#: (see :mod:`repro.incremental`) would replay a stale entry.
_VERSION_TICK = itertools.count(1)


class Store:
    """The store ``S``: global-variable values, rightmost-write wins.

    Beyond the paper's mapping, each entry carries a **write version**
    (a globally unique tick stamped by :meth:`assign`).  Versions are
    implementation caching outside the semantics — equality and hashing
    ignore them — and exist so memo probes on large models are O(read
    set) integer compares instead of deep value comparisons.  A name
    that was never assigned has version ``0``: its value comes lazily
    from the code (EP-GLOBAL-2), which versioning cannot witness.
    """

    __slots__ = ("_entries", "_versions", "_read_log")

    def __init__(self, entries=None, versions=None):
        self._entries = dict(entries) if entries else {}
        if versions is not None:
            self._versions = dict(versions)
        else:
            self._versions = {
                name: next(_VERSION_TICK) for name in self._entries
            }
        # Provenance capture (repro.provenance): while a read log is
        # active, every lookup records its name.  ``None`` (the default)
        # keeps the hot path at one identity compare.
        self._read_log = None

    def lookup(self, name):
        """``S(g)`` — the current value, or ``None`` when ``g ∉ dom S``."""
        if self._read_log is not None:
            self._read_log.append(name)
        return self._entries.get(name)

    def assign(self, name, value):
        """``S[g ↦ v]`` (ES-ASSIGN target)."""
        if not isinstance(value, ast.Expr) or not value.is_value():
            raise ReproError(
                "store can only hold values, got {!r}".format(value)
            )
        self._entries[name] = value
        self._versions[name] = next(_VERSION_TICK)

    def version(self, name):
        """The write version of ``name`` — ``0`` when never assigned."""
        return self._versions.get(name, 0)

    def begin_read_log(self):
        """Start recording the name of every :meth:`lookup`.

        Used by provenance capture around one evaluator run; reads made
        by EP-GLOBAL-2 fallback (value still coming from the code) are
        recorded too — they are reads at write version ``0``.
        """
        self._read_log = []

    def end_read_log(self):
        """Stop recording; returns the read names in first-read order,
        deduplicated."""
        log, self._read_log = self._read_log, None
        if not log:
            return ()
        return tuple(dict.fromkeys(log))

    def versions_snapshot(self):
        """``{name: write version}`` for every current entry — comparing
        two snapshots names exactly the assignments between them."""
        return dict(self._versions)

    def carry(self, name, value, version):
        """Assign ``name`` while *keeping* an existing write version.

        Used by the UPDATE fix-up (S-OKAY): the surviving value is the
        same assignment event, so memo entries stamped against the old
        store keep validating by integer compare in the new one.
        """
        if not isinstance(value, ast.Expr) or not value.is_value():
            raise ReproError(
                "store can only hold values, got {!r}".format(value)
            )
        self._entries[name] = value
        self._versions[name] = version

    def delete(self, name):
        """Remove an entry (used by the Fig. 12 fix-up's S-SKIP)."""
        self._entries.pop(name, None)
        self._versions.pop(name, None)

    def domain(self):
        """``dom S`` as a tuple, in first-assignment order."""
        return tuple(self._entries)

    def items(self):
        """All ``(g, v)`` pairs, in first-assignment order."""
        return tuple(self._entries.items())

    def __contains__(self, name):
        return name in self._entries

    def __len__(self):
        return len(self._entries)

    def copy(self):
        return Store(self._entries, versions=self._versions)

    def __eq__(self, other):
        return isinstance(other, Store) and self._entries == other._entries

    def __hash__(self):
        return hash(self.items())

    def __repr__(self):
        inner = ", ".join("{} ↦ …".format(name) for name in self._entries)
        return "Store({})".format(inner or "ε")


class PageStack:
    """The page stack ``P``: entries are added/removed at the end (top)."""

    __slots__ = ("_entries",)

    def __init__(self, entries=()):
        self._entries = list(entries)

    def push(self, page, arg):
        """``P (p, v)`` — used by the PUSH transition."""
        if not isinstance(arg, ast.Expr) or not arg.is_value():
            raise ReproError("page argument must be a value")
        self._entries.append((page, arg))

    def pop(self):
        """Remove the top entry; a no-op on the empty stack (rule POP)."""
        if self._entries:
            self._entries.pop()

    def top(self):
        """The current page ``(p, v)``, or ``None`` when empty."""
        return self._entries[-1] if self._entries else None

    def is_empty(self):
        return not self._entries

    def __len__(self):
        return len(self._entries)

    def entries(self):
        """All entries bottom-to-top, as an immutable snapshot."""
        return tuple(self._entries)

    def replace(self, entries):
        """Swap in a fixed-up stack (the UPDATE transition's ``P'``)."""
        self._entries = list(entries)

    def copy(self):
        return PageStack(self._entries)

    def __eq__(self, other):
        return (
            isinstance(other, PageStack) and self.entries() == other.entries()
        )

    def __hash__(self):
        return hash(self.entries())

    def __repr__(self):
        inner = " ".join("({}, v)".format(page) for page, _ in self._entries)
        return "P({})".format(inner or "ε")


class SystemState:
    """The full ``σ = (C, D, S, P, Q)`` with the paper's stability notion.

    Mutable: the transition relation updates components in place; use
    :meth:`snapshot` where tests need to compare before/after.
    """

    __slots__ = ("code", "display", "store", "stack", "queue")

    def __init__(self, code, display=STALE, store=None, stack=None, queue=None):
        if not isinstance(code, Code):
            raise ReproError("SystemState expects Code")
        self.code = code
        self.display = display
        self.store = store if store is not None else Store()
        self.stack = stack if stack is not None else PageStack()
        self.queue = queue if queue is not None else EventQueue()

    @classmethod
    def initial(cls, code):
        """The initial state ``(C, ⊥, ε, ε, ε)`` — unstable by definition."""
        return cls(code)

    def is_stable(self):
        """Stable ⇔ empty queue ∧ non-empty page stack (Section 4.2)."""
        return self.queue.is_empty() and not self.stack.is_empty()

    def display_is_valid(self):
        """Is ``D`` a box tree (as opposed to ``⊥``)?"""
        return isinstance(self.display, Box)

    def invalidate_display(self):
        """Set ``D = ⊥`` (every transition except RENDER does this)."""
        self.display = STALE

    def snapshot(self):
        """A deep-enough copy for before/after comparisons in tests.

        Code, display trees and values are immutable, so copying the three
        mutable containers suffices.
        """
        return SystemState(
            self.code,
            self.display,
            self.store.copy(),
            self.stack.copy(),
            self.queue.copy(),
        )

    def __repr__(self):
        return "σ(C={} defs, D={}, S={} entries, {!r}, {!r})".format(
            len(self.code),
            "B" if self.display_is_valid() else "⊥",
            len(self.store),
            self.stack,
            self.queue,
        )
