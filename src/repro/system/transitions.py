"""The system transition relation ``→g`` (Fig. 9).

:class:`System` wraps a :class:`~repro.system.state.SystemState` and
exposes one method per rule:

* user-initiated (only enabled in the states the rules demand):
  :meth:`startup`, :meth:`tap`, :meth:`back`, :meth:`edit` (extension),
  :meth:`update`;
* internal: :meth:`handle_next_event` (THUNK / PUSH / POP),
  :meth:`render`;
* the scheduler :meth:`step`, which fires the unique enabled internal
  transition, and :meth:`run_to_stable`, which iterates it until the
  state is stable *and* the display is valid — the paper's "the system is
  always live" loop.

Every transition except RENDER invalidates the display (``D := ⊥``);
RENDER is the only rule that produces a box tree, and it always runs the
*current* code against the *current* store — which is precisely why a
code update is immediately reflected in the view.

The optional box-tree **reuse optimization** (Section 5) is implementation
caching layered *outside* the semantics: the previous valid display is
remembered privately, and after a re-render unchanged subtrees are shared
with it (:mod:`repro.boxes.diff`).  The observable display is structurally
identical either way; tests assert that.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from ..boxes import diff as box_diff
from ..boxes.paths import innermost_box_with_attr, resolve
from ..boxes.tree import STALE
from ..core import ast
from ..core.defs import Code
from ..core.errors import ReproError, SystemError_, UpdateRejected
from ..core.names import ATTR_EDITABLE, ATTR_ONEDIT, ATTR_ONTAP, START_PAGE
from ..eval.machine import BigStep, SmallStep
from ..eval.natives import EMPTY_NATIVES
from ..obs.trace import NULL_TRACER, clock
from ..typing.program import code_problems
from .events import EventQueue, ExecEvent, PopEvent, PushEvent, edit_thunk
from .fixup import fixup
from .services import Services
from .state import SystemState


@dataclass(frozen=True)
class Transition:
    """One fired ``→g`` transition, recorded in the system's trace.

    ``elapsed`` and ``span_id`` are observability enrichment (wall
    seconds spent firing the rule, and the id of the matching tracer
    span when tracing is on); they do not participate in equality, so
    traces still compare by ``(rule, detail)``.
    """

    rule: str
    detail: str = ""
    elapsed: float = field(default=0.0, compare=False)
    span_id: object = field(default=None, compare=False)

    def __str__(self):
        if self.detail:
            return "{}({})".format(self.rule, self.detail)
        return self.rule


class System:
    """A running program: the state σ plus the machinery to step it.

    ``faithful=True`` drives every expression evaluation through the
    literal small-step machine instead of the CEK machine — identical
    observable behaviour (differential tests assert it), an order of
    magnitude slower, and the configuration under which the metatheory
    suite checks per-step preservation.
    """

    def __init__(
        self,
        code,
        natives=EMPTY_NATIVES,
        services=None,
        faithful=False,
        reuse_boxes=False,
        memo_render=False,
        memo_store=None,
        check_updates=True,
        tracer=None,
        budget=None,
        chaos=None,
        backend=None,
    ):
        if not isinstance(code, Code):
            raise ReproError("System expects Code")
        self.natives = natives
        #: Evaluator backend (repro.eval.backends): ``"tree"`` walks the
        #: AST (the oracle), ``"compiled"`` lowers each code version to
        #: Python closures once and reuses them.  ``faithful`` pins the
        #: small-step machine and only pairs with the tree backend.
        from ..eval.backends import resolve_backend

        self.backend = resolve_backend(backend)
        self.backend_name = self.backend.name
        if faithful and self.backend_name not in (None, "tree"):
            raise ReproError(
                "faithful evaluation is the tree oracle; it cannot run "
                "on backend {!r}".format(self.backend_name)
            )
        #: Observability hook (repro.obs).  The default NullTracer makes
        #: every instrumentation point a no-op; a real Tracer records a
        #: span per fired transition plus the metric catalog.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Supervision (repro.resilience): per-transition limits.  Every
        #: handler/render run gets ``budget.fuel``; a transition that
        #: charges more virtual time than ``budget.deadline`` raises
        #: :class:`~repro.core.errors.DeadlineExceeded` — enforcement
        #: lives here so it composes with both fault policies.
        if budget is None:
            from ..resilience.supervisor import UNLIMITED

            budget = UNLIMITED
        self.budget = budget
        self.services = services if services is not None else Services()
        #: Chaos (repro.resilience): when a FaultInjector is given, the
        #: services boundary and every evaluator run go through its
        #: wrappers so seeded faults fire deterministically.
        self.chaos = chaos
        if chaos is not None:
            from ..resilience.chaos import ChaosServices

            self.services = ChaosServices(self.services, chaos)
        self.faithful = faithful
        self.reuse_boxes = reuse_boxes
        #: Render-function memoization (repro.eval.memo) — only the CEK
        #: machine supports it.  UPDATE swaps the whole evaluator (and
        #: with it the per-code-version RenderMemo *view*), but entries
        #: live in one update-surviving MemoStore (repro.incremental).
        #: By default the store is private and owned here for the life
        #: of the system; ``memo_store`` injects a shared one instead —
        #: typically a :class:`~repro.incremental.store.SessionMemoView`
        #: over a per-program store (repro.cluster), so sessions running
        #: the same app warm each other.  Injecting a store implies
        #: memoization.
        self.memo_render = (
            (memo_render or memo_store is not None) and not faithful
        )
        self.render_memo = None
        self._memo_store = None
        if self.memo_render:
            if memo_store is not None:
                self._memo_store = memo_store
            else:
                from ..incremental.store import MemoStore

                self._memo_store = MemoStore(tracer=self.tracer)
        #: Per-render memo deltas of the most recent RENDER, and of the
        #: first RENDER after the most recent UPDATE (what the edit →
        #: re-render loop actually reused).  Empty dicts until the
        #: respective transition has fired with memoization on.
        self.last_render_stats = {}
        self.last_update_render_stats = {}
        self._render_after_update = False
        #: When True (default), UPDATE enforces its ``C' ⊢ C'`` premise —
        #: and so does construction, since rule T-SYS types every state.
        self.check_updates = check_updates
        if check_updates:
            problems = code_problems(code, natives)
            if problems:
                raise UpdateRejected(
                    "the initial program is not well-typed "
                    "({} problem{})".format(
                        len(problems), "" if len(problems) == 1 else "s"
                    ),
                    problems=problems,
                )
        #: Provenance capture (repro.provenance).  Off by default — the
        #: flag is flipped *post-construction* by the replayer, never on
        #: live sessions, so the semantics' hot path stays unchanged.
        #: While on, every evaluator run in :meth:`handle_next_event`
        #: appends ``{"rule", "detail", "reads", "writes"}`` to
        #: :attr:`provenance_log` (reads = store names looked up, writes
        #: = ``{name: new write version}``), and UPDATE appends its
        #: fix-up's write/delete effects.
        self.capture_provenance = False
        self.provenance_log = []
        self.state = SystemState.initial(code)
        self.trace = []
        self._last_valid_display = None
        self._evaluator = self._make_evaluator(code)
        #: Host-side native implementations, by identity.  Digests hash
        #: program code only — they cannot see host Python — so if an
        #: update rebinds a native to a *different* callable, the memo
        #: entries whose producers can reach that native are suspect and
        #: are dropped (see :meth:`_invalidate_native_entries`).
        self._native_impls = self._snapshot_native_impls()

    def _snapshot_native_impls(self):
        return {
            name: self.natives.implementation(name)
            for name in self.natives.names()
        }

    def _invalidate_native_entries(self, rebound):
        """Drop memo entries that may have called a rebound native.

        Stores grown before the ``natives`` stamp (or third-party ones)
        may not implement the precise hook; those fall back to the old
        conservative behaviour of clearing everything.
        """
        invalidate = getattr(self._memo_store, "invalidate_natives", None)
        if invalidate is None:
            self._memo_store.clear()
        else:
            invalidate(rebound)

    # -- plumbing ---------------------------------------------------------------

    def _make_evaluator(self, code):
        if self.faithful:
            evaluator = SmallStep(
                code, natives=self.natives, services=self.services,
                tracer=self.tracer,
            )
        else:
            memo = None
            if self.memo_render:
                from ..eval.memo import RenderMemo

                memo = RenderMemo(
                    code, store=self._memo_store, tracer=self.tracer
                )
            self.render_memo = memo
            evaluator = self.backend.compile(
                code, natives=self.natives, services=self.services,
                memo=memo, tracer=self.tracer,
            )
        if self.chaos is not None:
            from ..resilience.chaos import ChaosEvaluator

            evaluator = ChaosEvaluator(evaluator, self.chaos)
        return evaluator

    def _check_deadline(self, rule, virtual_before):
        """Enforce the budget's virtual-clock deadline for one transition."""
        if self.budget.deadline is None:
            return
        self.budget.check_deadline(
            rule, self.services.clock.now - virtual_before
        )

    def _record(self, rule, detail="", started=None, span=None):
        self.trace.append(Transition(
            rule,
            detail,
            elapsed=0.0 if started is None else clock() - started,
            span_id=None if span is None else span.span_id,
        ))

    @property
    def code(self):
        return self.state.code

    @property
    def display(self):
        return self.state.display

    def _invalidate(self):
        self.state.invalidate_display()

    # -- rules that enqueue events (user actions + startup) ----------------------

    def startup(self):
        """(STARTUP): ``(C, D, S, ε, ε) →g (C, ⊥, S, ε, [push start ()])``."""
        if not self.state.stack.is_empty() or not self.state.queue.is_empty():
            raise SystemError_(
                "STARTUP is only enabled with an empty page stack and queue"
            )
        started = clock()
        with self.tracer.span("startup") as span:
            self.state.queue.enqueue(PushEvent(START_PAGE, ast.UNIT_VALUE))
            self.tracer.add("events_queued")
            self._invalidate()
        self._record("STARTUP", started=started, span=span)

    def tap(self, path=()):
        """(TAP): fire the ``ontap`` handler of the box at ``path``.

        The rule's premise ``[ontap = v] ∈ B`` requires a *valid* display —
        "it is not possible to activate tap handlers on a stale display".
        Taps on nested content bubble to the nearest enclosing box with a
        handler, as in the implementation.
        """
        if not self.state.display_is_valid():
            raise SystemError_("TAP requires a valid (non-stale) display")
        started = clock()
        with self.tracer.span("tap") as span:
            handler_path, box = innermost_box_with_attr(
                self.state.display, tuple(path), ATTR_ONTAP
            )
            if box is None:
                raise SystemError_(
                    "no box at or above {} has an ontap handler".format(
                        list(path)
                    )
                )
            handler = box.get_attr(ATTR_ONTAP)
            self.state.queue.enqueue(ExecEvent(handler))
            self.tracer.add("events_queued")
            self._invalidate()
            span.annotate(path="/".join(str(i) for i in handler_path))
        self._record(
            "TAP", detail="/".join(str(i) for i in handler_path),
            started=started, span=span,
        )
        return handler_path

    def edit(self, path, text):
        """(EDIT, extension): fire the ``onedit`` handler with new text.

        The paper's boxes "respond to interactions such as tapping or
        *editing* by the user" (Section 3); this is the editing analogue of
        TAP, wrapping ``onedit`` applied to the new text into an ``[exec]``
        event.
        """
        if not self.state.display_is_valid():
            raise SystemError_("EDIT requires a valid (non-stale) display")
        started = clock()
        with self.tracer.span("edit") as span:
            box = resolve(self.state.display, tuple(path))
            handler = box.get_attr(ATTR_ONEDIT)
            if handler is None:
                raise SystemError_(
                    "box at {} has no onedit handler".format(list(path))
                )
            self.state.queue.enqueue(ExecEvent(edit_thunk(handler, text)))
            self.tracer.add("events_queued")
            self._invalidate()
        self._record("EDIT", detail=text, started=started, span=span)

    def back(self):
        """(BACK): always enabled; enqueues ``[pop]``."""
        started = clock()
        with self.tracer.span("back") as span:
            self.state.queue.enqueue(PopEvent())
            self.tracer.add("events_queued")
            self._invalidate()
        self._record("BACK", started=started, span=span)

    # -- rules that handle events -------------------------------------------------

    def handle_next_event(self):
        """(THUNK)/(PUSH)/(POP): dequeue and dispatch one event."""
        queue = self.state.queue
        if queue.is_empty():
            raise SystemError_("the event queue is empty")
        event = queue.dequeue()
        store = self.state.store
        started = clock()
        virtual_before = self.services.clock.now
        fuel = self.budget.fuel
        with self.tracer.span("event", event=str(event)) as span:
            pending_before = len(queue)
            if isinstance(event, ExecEvent):
                # (THUNK): reduce ``v ()`` in standard mode.
                with self._provenance_capture("THUNK"):
                    self._evaluator.run_state(
                        store, queue, ast.App(event.thunk, ast.UNIT_VALUE),
                        fuel=fuel,
                    )
                self._invalidate()
                self._check_deadline("THUNK", virtual_before)
                rule, detail = "THUNK", ""
            elif isinstance(event, PushEvent):
                # (PUSH): C(p) = (fi, fr); push (p, v); reduce ``fi v``.
                page = self.code.page(event.page)
                if page is None:
                    raise SystemError_(
                        "push of undefined page '{}'".format(event.page)
                    )
                self.state.stack.push(event.page, event.arg)
                with self._provenance_capture("PUSH", event.page):
                    self._evaluator.run_state(
                        store, queue, ast.App(page.init, event.arg),
                        fuel=fuel,
                    )
                self._invalidate()
                self._check_deadline("PUSH", virtual_before)
                rule, detail = "PUSH", event.page
            elif isinstance(event, PopEvent):
                # (POP): pop the top page, or do nothing on an empty stack.
                self.state.stack.pop()
                self._invalidate()
                rule, detail = "POP", ""
            else:
                raise SystemError_("unknown event {!r}".format(event))
            # Events the handler itself enqueued (nested push/pop).
            cascaded = len(queue) - pending_before
            if cascaded > 0:
                self.tracer.add("events_queued", cascaded)
        self._record(rule, detail, started=started, span=span)
        return event

    @contextmanager
    def _provenance_capture(self, rule, detail=""):
        """Log one evaluator run's store reads and writes (when capturing).

        The entry is appended even when the run faults: write-ahead
        semantics mean a faulting handler executed exactly as far as the
        small-step relation reached, and those partial writes are real
        provenance.  RENDER is deliberately *not* captured — a render
        reads everything on the page; the per-box read attribution comes
        from the static read sets (:func:`repro.eval.memo.
        global_read_sets`) instead.
        """
        if not self.capture_provenance:
            yield
            return
        store = self.state.store
        before = store.versions_snapshot()
        store.begin_read_log()
        try:
            yield
        finally:
            reads = store.end_read_log()
            after = store.versions_snapshot()
            writes = {
                name: version for name, version in after.items()
                if before.get(name) != version
            }
            self.provenance_log.append({
                "rule": rule, "detail": detail,
                "reads": reads, "writes": writes,
            })

    # -- the one rule that refreshes the display ------------------------------------

    def render(self):
        """(RENDER): ``(C, ⊥, S, P(p,v), ε) →g (C, B, S, P(p,v), ε)``.

        Runs the *current top page's* render body in render mode against
        the current store, producing a fresh box tree.  Only enabled when
        the queue is empty, the stack is non-empty and the display is
        stale — exactly the rule's shape.
        """
        state = self.state
        if not state.queue.is_empty():
            raise SystemError_("RENDER requires an empty event queue")
        if state.display is not STALE:
            raise SystemError_("RENDER requires a stale display (⊥)")
        top = state.stack.top()
        if top is None:
            raise SystemError_("RENDER requires a non-empty page stack")
        page_name, arg = top
        page = self.code.page(page_name)
        if page is None:
            raise SystemError_(
                "page '{}' is on the stack but not in the code — the "
                "UPDATE fix-up should have removed it".format(page_name)
            )
        tracer = self.tracer
        started = clock()
        virtual_before = self.services.clock.now
        memo = self.render_memo
        if memo is not None:
            memo_before = (memo.hits, memo.misses, memo.replayed_boxes)
        with tracer.span("render", page=page_name) as span:
            tree = self._evaluator.run_render(
                state.store, ast.App(page.render, arg),
                fuel=self.budget.fuel,
            )
            self._check_deadline("RENDER", virtual_before)
            if self.reuse_boxes:
                stats = box_diff.DiffStats()
                with tracer.span("reuse"):
                    tree = box_diff.reuse(
                        self._last_valid_display, tree, stats
                    )
                tracer.add("reuse_shared_subtrees", stats.reused_boxes)
            tracer.add("boxes_rendered", tree.count_boxes())
            state.display = tree
            self._last_valid_display = tree
            if memo is not None:
                self._record_render_reuse(memo, memo_before)
        self._record("RENDER", detail=page_name, started=started, span=span)
        return tree

    def _record_render_reuse(self, memo, before):
        """Per-render memo deltas; extra accounting after an UPDATE.

        The first render after UPDATE is the latency the live loop is
        about, so it gets its own counters plus the ``update_reuse_ratio``
        gauge — the fraction of memoizable calls the edit did *not*
        invalidate.
        """
        hits_before, misses_before, replayed_before = before
        stats = {
            "hits": memo.hits - hits_before,
            "misses": memo.misses - misses_before,
            "replayed_boxes": memo.replayed_boxes - replayed_before,
        }
        self.last_render_stats = stats
        self.tracer.add("incremental.replayed_boxes", stats["replayed_boxes"])
        if self._render_after_update:
            self._render_after_update = False
            self.last_update_render_stats = stats
            self.tracer.add("incremental.update_hits", stats["hits"])
            self.tracer.add("incremental.update_misses", stats["misses"])
            total = stats["hits"] + stats["misses"]
            self.tracer.gauge(
                "incremental.update_reuse_ratio",
                stats["hits"] / total if total else 0.0,
            )

    # -- the code-update rule ---------------------------------------------------------

    def update(self, new_code, natives=None):
        """(UPDATE): swap in ``C'``, fix up ``S`` and ``P``, invalidate ``D``.

        Premises: the queue is empty (updates happen in quiescent moments;
        the live editor guarantees this by running events to completion
        first) and ``C' ⊢ C'`` — ill-typed programs are *rejected*, raising
        :class:`UpdateRejected`, and the running program is untouched; this
        is how the live view stays available while the programmer types
        through broken intermediate states.

        Returns the :class:`~repro.system.fixup.FixupReport` describing any
        state the update deleted.
        """
        if not self.state.queue.is_empty():
            raise SystemError_("UPDATE requires an empty event queue")
        if natives is not None:
            self.natives = natives
        started = clock()
        with self.tracer.span("update") as span:
            if self.check_updates:
                with self.tracer.span("typecheck_update"):
                    problems = code_problems(new_code, self.natives)
                if problems:
                    raise UpdateRejected(
                        "the new program is not well-typed "
                        "({} problem{})".format(
                            len(problems), "" if len(problems) == 1 else "s"
                        ),
                        problems=problems,
                    )
            versions_before = (
                self.state.store.versions_snapshot()
                if self.capture_provenance else None
            )
            with self.tracer.span("fixup"):
                new_store, new_stack, report = fixup(
                    new_code, self.state.store, self.state.stack,
                    self.natives, tracer=self.tracer,
                )
            if versions_before is not None:
                after = new_store.versions_snapshot()
                self.provenance_log.append({
                    "rule": "UPDATE", "detail": "",
                    "reads": (),
                    # Fix-up *carries* surviving versions, so any diff
                    # here is a type-mismatch re-initialisation; dropped
                    # names are the S-SKIP deletions.
                    "writes": {
                        name: version for name, version in after.items()
                        if versions_before.get(name) != version
                    },
                    "deleted": tuple(
                        name for name in versions_before
                        if name not in after
                    ),
                })
            self.state.code = new_code
            self.state.store = new_store
            self.state.stack = new_stack
            self._invalidate()
            if self._memo_store is not None:
                impls = self._snapshot_native_impls()
                old_impls = self._native_impls
                rebound = frozenset(
                    name
                    for name in old_impls.keys() | impls.keys()
                    if old_impls.get(name) is not impls.get(name)
                )
                if rebound:
                    # Digests cannot see host Python, so entries touched
                    # by a rebound native are stale under unchanged keys.
                    self._invalidate_native_entries(rebound)
                self._native_impls = impls
                self.tracer.add(
                    "incremental.entries_carried", len(self._memo_store)
                )
                self._render_after_update = True
            # Retire the outgoing evaluator before compiling the new
            # code version (backends with compiled-unit caches free
            # them here; duck-typed backends may omit the hook).
            retire = getattr(self.backend, "invalidate", None)
            if retire is not None:
                retire(self._evaluator)
            self._evaluator = self._make_evaluator(new_code)
            if not report.clean:
                span.annotate(
                    dropped=", ".join(
                        report.dropped_globals + report.dropped_pages
                    )
                )
        self._record(
            "UPDATE",
            detail="" if report.clean else "dropped {}".format(
                ", ".join(report.dropped_globals + report.dropped_pages)
            ),
            started=started, span=span,
        )
        return report

    # -- scheduling ----------------------------------------------------------------------

    def enabled_internal_transition(self):
        """Name of the internal transition the scheduler would fire, or None.

        While the state is unstable "one of the following transitions is
        always enabled" (Section 4.2); in fact exactly one is, so the
        system is deterministic between user actions.
        """
        state = self.state
        if state.stack.is_empty() and state.queue.is_empty():
            return "STARTUP"
        if not state.queue.is_empty():
            return "EVENT"
        if state.display is STALE and not state.stack.is_empty():
            return "RENDER"
        return None

    def step(self):
        """Fire the enabled internal transition; returns its rule name or
        ``None`` when the system is stable with a valid display."""
        choice = self.enabled_internal_transition()
        if choice == "STARTUP":
            self.startup()
        elif choice == "EVENT":
            self.handle_next_event()
        elif choice == "RENDER":
            self.render()
        return choice

    def run_to_stable(self, max_transitions=100_000):
        """Iterate :meth:`step` until stable with a valid display.

        The bound guards against programs that push pages forever ("this
        can lead to an infinite loop of pushing new pages").
        """
        fired = 0
        while True:
            choice = self.step()
            if choice is None:
                return fired
            fired += 1
            if fired >= max_transitions:
                raise SystemError_(
                    "no stable state after {} transitions — the program "
                    "is pushing pages or events forever".format(fired)
                )
