"""The type-and-effect system (Figs. 10 and 11)."""

from .checker import Checker, check, check_value_type
from .context import TypeEnv
from .program import check_code, code_problems, is_well_typed
from .state import (
    EXEC_THUNK_TYPE,
    check_system,
    display_problems,
    queue_problems,
    stack_problems,
    store_problems,
    system_problems,
)

__all__ = [name for name in dir() if not name.startswith("_")]
