"""The expression type-and-effect checker — Fig. 10, rule for rule.

The judgment ``C; Γ ⊢µ e : τ`` becomes :func:`check`.  The checker is
syntax-directed: every node synthesizes a type, and rule T-SUB is folded
into the subsumption points (function application and every position with
an expected type) via :func:`repro.core.types.is_subtype` — the standard
algorithmic presentation of a declarative subtyping rule.

Every diagnostic names the figure's rule whose premise failed, so the test
suite can assert not just *that* an ill-typed program is rejected but *why*
— e.g. a global assignment inside render code fails with rule ``T-ASSIGN``
and an :class:`EffectProblem`, which is the formal content of the paper's
"render code can only read, but not modify global variables".
"""

from __future__ import annotations

from ..core import ast
from ..core.defs import Code
from ..core.effects import Effect, PURE, RENDER, STATE, subeffect
from ..core.errors import EffectProblem, TypeProblem
from ..core.prims import PRIM_SIGS, match_signature
from ..core.types import (
    FunType,
    ListType,
    NUMBER,
    STRING,
    TupleType,
    Type,
    UNIT,
    is_subtype,
)
from .context import TypeEnv, attribute_type


def check(code, expr, effect=PURE, env=None, natives=None):
    """``C; Γ ⊢µ e : τ`` — synthesize the type of ``expr`` under ``effect``.

    Raises :class:`TypeProblem` (or its subclass :class:`EffectProblem`
    for effect-discipline violations) when no derivation exists.
    """
    if env is None:
        env = TypeEnv.empty()
    checker = Checker(code, natives)
    return checker.check(expr, effect, env)


def check_value_type(code, value, expected, natives=None):
    """Is ``C; ε ⊢s v : τ`` derivable?  Boolean form used by Fig. 12's fix-up.

    (For *values* the three effect modes agree — values contain no redexes
    — so checking under ``s`` matches the paper's statement exactly.)
    """
    try:
        actual = check(code, value, effect=STATE, natives=natives)
    except TypeProblem:
        return False
    return is_subtype(actual, expected)


class Checker:
    """Stateful facade holding ``C`` and the native table across a check."""

    def __init__(self, code, natives=None):
        if not isinstance(code, Code):
            raise TypeProblem("checker expects Code, got {!r}".format(code))
        self.code = code
        self.natives = natives

    # The main dispatch.  Each branch is commented with its Fig. 10 rule.
    def check(self, expr, effect, env):
        if isinstance(expr, ast.Num):  # T-INT (numbers generally)
            return NUMBER
        if isinstance(expr, ast.Str):  # T-STRING
            return STRING
        if isinstance(expr, ast.Var):  # T-VAR
            type_ = env.lookup(expr.name)
            if type_ is None:
                raise TypeProblem(
                    "unbound variable '{}'".format(expr.name), rule="T-VAR"
                )
            return type_
        if isinstance(expr, ast.Tuple):  # T-TUPLE
            return TupleType(
                tuple(self.check(item, effect, env) for item in expr.items)
            )
        if isinstance(expr, ast.ListLit):  # T-LIST (extension)
            for index, item in enumerate(expr.items):
                item_type = self.check(item, effect, env)
                if not is_subtype(item_type, expr.element_type):
                    raise TypeProblem(
                        "list item {} has type {}, expected {}".format(
                            index + 1, item_type, expr.element_type
                        ),
                        rule="T-LIST",
                    )
            return ListType(expr.element_type)
        if isinstance(expr, ast.Lam):  # T-LAM
            body_type = self.check(
                expr.body, expr.effect, env.extend(expr.param, expr.param_type)
            )
            return FunType(expr.param_type, body_type, expr.effect)
        if isinstance(expr, ast.App):  # T-APP (+ T-SUB on the arrow effect)
            fn_type = self.check(expr.fn, effect, env)
            if not isinstance(fn_type, FunType):
                raise TypeProblem(
                    "application of a non-function of type {}".format(fn_type),
                    rule="T-APP",
                )
            if not subeffect(fn_type.effect, effect):
                raise EffectProblem(
                    "calling a -{}> function under effect {}".format(
                        fn_type.effect, effect
                    ),
                    rule="T-APP",
                )
            arg_type = self.check(expr.arg, effect, env)
            if not is_subtype(arg_type, fn_type.param):
                raise TypeProblem(
                    "argument has type {}, expected {}".format(
                        arg_type, fn_type.param
                    ),
                    rule="T-APP",
                )
            return fn_type.result
        if isinstance(expr, ast.FunRef):  # T-FUN
            definition = self.code.function(expr.name)
            if definition is None:
                raise TypeProblem(
                    "undefined function '{}'".format(expr.name), rule="T-FUN"
                )
            return definition.type
        if isinstance(expr, ast.Proj):  # T-PROJ
            target_type = self.check(expr.tuple_expr, effect, env)
            if not isinstance(target_type, TupleType):
                raise TypeProblem(
                    "projection from non-tuple type {}".format(target_type),
                    rule="T-PROJ",
                )
            if expr.index > target_type.arity:
                raise TypeProblem(
                    "projection .{} out of range for {}".format(
                        expr.index, target_type
                    ),
                    rule="T-PROJ",
                )
            return target_type.elements[expr.index - 1]
        if isinstance(expr, ast.GlobalRead):  # T-GLOBAL
            definition = self.code.global_(expr.name)
            if definition is None:
                raise TypeProblem(
                    "undefined global '{}'".format(expr.name), rule="T-GLOBAL"
                )
            return definition.type
        if isinstance(expr, ast.GlobalWrite):  # T-ASSIGN
            if effect is not STATE:
                raise EffectProblem(
                    "assignment to '{}' requires effect s, but the context "
                    "is {} — {}".format(
                        expr.name,
                        effect,
                        "render code can only read global variables"
                        if effect is RENDER
                        else "pure code cannot write global variables",
                    ),
                    rule="T-ASSIGN",
                )
            definition = self.code.global_(expr.name)
            if definition is None:
                raise TypeProblem(
                    "assignment to undefined global '{}'".format(expr.name),
                    rule="T-ASSIGN",
                )
            value_type = self.check(expr.value, effect, env)
            if not is_subtype(value_type, definition.type):
                raise TypeProblem(
                    "assigning {} to global '{}' of type {}".format(
                        value_type, expr.name, definition.type
                    ),
                    rule="T-ASSIGN",
                )
            return UNIT
        if isinstance(expr, ast.Push):  # T-PUSH
            if effect is not STATE:
                raise EffectProblem(
                    "push requires effect s, but the context is {}".format(
                        effect
                    ),
                    rule="T-PUSH",
                )
            page = self.code.page(expr.page)
            if page is None:
                raise TypeProblem(
                    "push of undefined page '{}'".format(expr.page),
                    rule="T-PUSH",
                )
            arg_type = self.check(expr.arg, effect, env)
            if not is_subtype(arg_type, page.arg_type):
                raise TypeProblem(
                    "page '{}' takes {}, got {}".format(
                        expr.page, page.arg_type, arg_type
                    ),
                    rule="T-PUSH",
                )
            return UNIT
        if isinstance(expr, ast.Pop):  # T-POP
            if effect is not STATE:
                raise EffectProblem(
                    "pop requires effect s, but the context is {}".format(
                        effect
                    ),
                    rule="T-POP",
                )
            return UNIT
        if isinstance(expr, ast.Boxed):  # T-BOXED
            if effect is not RENDER:
                raise EffectProblem(
                    "boxed requires effect r, but the context is {} — "
                    "only render code can create boxes".format(effect),
                    rule="T-BOXED",
                )
            return self.check(expr.body, RENDER, env)
        if isinstance(expr, ast.Post):  # T-POST
            if effect is not RENDER:
                raise EffectProblem(
                    "post requires effect r, but the context is {}".format(
                        effect
                    ),
                    rule="T-POST",
                )
            self.check(expr.value, RENDER, env)
            return UNIT
        if isinstance(expr, ast.SetAttr):  # T-ATTR
            if effect is not RENDER:
                raise EffectProblem(
                    "box.{} := requires effect r, but the context is "
                    "{}".format(expr.attr, effect),
                    rule="T-ATTR",
                )
            expected = attribute_type(expr.attr)
            if expected is None:
                raise TypeProblem(
                    "unknown box attribute '{}'".format(expr.attr),
                    rule="T-ATTR",
                )
            value_type = self.check(expr.value, RENDER, env)
            if not is_subtype(value_type, expected):
                raise TypeProblem(
                    "attribute '{}' has type {}, got {}".format(
                        expr.attr, expected, value_type
                    ),
                    rule="T-ATTR",
                )
            return UNIT
        if isinstance(expr, ast.If):  # T-IF (extension)
            cond_type = self.check(expr.cond, effect, env)
            if not is_subtype(cond_type, NUMBER):
                raise TypeProblem(
                    "if-condition has type {}, expected number".format(
                        cond_type
                    ),
                    rule="T-IF",
                )
            then_type = self.check(expr.then_branch, effect, env)
            else_type = self.check(expr.else_branch, effect, env)
            joined = _lub(then_type, else_type)
            if joined is None:
                raise TypeProblem(
                    "if-branches disagree: {} vs {}".format(
                        then_type, else_type
                    ),
                    rule="T-IF",
                )
            return joined
        if isinstance(expr, ast.Prim):  # T-PRIM (extension)
            sig = PRIM_SIGS.get(expr.op)
            if sig is None and self.natives is not None:
                sig = self.natives.signature(expr.op)
            if sig is None:
                raise TypeProblem(
                    "unknown operator '{}'".format(expr.op), rule="T-PRIM"
                )
            if not subeffect(sig.effect, effect):
                raise EffectProblem(
                    "operator '{}' has effect {} but the context is "
                    "{}".format(expr.op, sig.effect, effect),
                    rule="T-PRIM",
                )
            arg_types = [self.check(arg, effect, env) for arg in expr.args]
            return match_signature(sig, arg_types)
        raise TypeProblem("cannot type {!r}".format(expr))


def _lub(left, right):
    """Least upper bound of two types under the T-SUB ordering, or None.

    Only the effect dimension produces proper joins; everything else must
    match structurally.
    """
    if left == right:
        return left
    if is_subtype(left, right):
        return right
    if is_subtype(right, left):
        return left
    if isinstance(left, FunType) and isinstance(right, FunType):
        if left.param == right.param:
            result = _lub(left.result, right.result)
            from ..core.effects import join

            effect = join(left.effect, right.effect)
            if result is not None and effect is not None:
                return FunType(left.param, result, effect)
    return None
