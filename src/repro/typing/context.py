"""Typing environments ``Γ`` (Fig. 6) for the expression checker.

An environment maps lambda-bound variables to types.  It is persistent
(``extend`` returns a new environment) because rule T-LAM types the body in
an extended context without disturbing the outer one.

The *attribute* environment ``Γa`` of Fig. 10 lives in
:mod:`repro.boxes.attributes`; this module only re-exports its lookup so
the checker has a single import surface.
"""

from __future__ import annotations

from ..boxes.attributes import attribute_type
from ..core.errors import ReproError
from ..core.types import Type


class TypeEnv:
    """An immutable variable-typing context ``Γ ::= ε | Γ, x : τ``."""

    __slots__ = ("_bindings",)

    def __init__(self, bindings=None):
        self._bindings = dict(bindings) if bindings else {}

    @classmethod
    def empty(cls):
        """``ε`` — the empty context (used for all top-level judgments)."""
        return _EMPTY

    def extend(self, name, type_):
        """``Γ, x : τ`` — later bindings shadow earlier ones."""
        if not isinstance(type_, Type):
            raise ReproError("extend expects a Type, got {!r}".format(type_))
        bindings = dict(self._bindings)
        bindings[name] = type_
        return TypeEnv(bindings)

    def lookup(self, name):
        """The type of ``name`` or ``None`` (rule T-VAR's premise)."""
        return self._bindings.get(name)

    def __contains__(self, name):
        return name in self._bindings

    def __len__(self):
        return len(self._bindings)

    def __repr__(self):
        inner = ", ".join(
            "{} : {}".format(k, v) for k, v in self._bindings.items()
        )
        return "TypeEnv({})".format(inner or "ε")


_EMPTY = TypeEnv()

__all__ = ["TypeEnv", "attribute_type"]
