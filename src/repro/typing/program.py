"""Program typing ``C ⊢ C`` (Fig. 11, rules T-C-GLOBAL / T-C-FUN / T-C-PAGE).

A program is well-typed when

* no name is defined twice (the ``Defs(C')`` premises) — and, in this
  implementation, no program name shadows a registered native operator;
* every global has a →-free type and its initial value types (purely) at
  that type;
* every function body types purely at its declared arrow type;
* every page has a →-free argument type, an init body of type
  ``τ -s> ()`` and a render body of type ``τ -r> ()``;
* a ``start`` page exists (premise of T-SYS) and takes the unit argument,
  since the STARTUP transition pushes ``[push start ()]``.

:func:`code_problems` collects *all* violations (the live editor wants the
full list to display, not just the first), while :func:`check_code` raises
on the first.  ``C' ⊢ C'`` holding is exactly the first premise of the
UPDATE transition — see :mod:`repro.system.transitions`.
"""

from __future__ import annotations

from ..core import ast
from ..core.defs import Code, FunDef, GlobalDef, PageDef
from ..core.effects import PURE, RENDER, STATE
from ..core.errors import TypeProblem
from ..core.names import START_PAGE
from ..core.prims import PRIM_SIGS
from ..core.types import FunType, UNIT, fun, is_subtype
from .checker import Checker


def code_problems(code, natives=None):
    """All reasons why ``C ⊢ C`` fails, as a list of :class:`TypeProblem`.

    An empty list means the program is well-typed.
    """
    problems = []
    if not isinstance(code, Code):
        return [TypeProblem("not a program: {!r}".format(code))]
    checker = Checker(code, natives)

    for definition in code:
        problems.extend(_check_def(checker, definition, natives))

    start = code.page(START_PAGE)
    if start is None:
        problems.append(
            TypeProblem(
                "no 'page start' definition — rule T-SYS requires one",
                rule="T-SYS",
            )
        )
    elif start.arg_type != UNIT:
        problems.append(
            TypeProblem(
                "page 'start' must take the unit argument (); STARTUP "
                "pushes [push start ()]",
                rule="T-SYS",
            )
        )
    return problems


def _check_def(checker, definition, natives):
    problems = []
    name = definition.name
    if name in PRIM_SIGS or (
        natives is not None and natives.signature(name) is not None
    ):
        problems.append(
            TypeProblem(
                "definition '{}' shadows a built-in operator".format(name)
            )
        )
    if isinstance(definition, GlobalDef):
        if not definition.type.is_function_free():
            problems.append(
                TypeProblem(
                    "global '{}' has type {} which is not →-free — global "
                    "variables may not store functions (this is what keeps "
                    "stale code out of the store across updates)".format(
                        name, definition.type
                    ),
                    rule="T-C-GLOBAL",
                )
            )
        problems.extend(
            _check_body(
                checker,
                definition.init,
                definition.type,
                PURE,
                "initial value of global '{}'".format(name),
                "T-C-GLOBAL",
            )
        )
    elif isinstance(definition, FunDef):
        if not isinstance(definition.type, FunType):
            problems.append(
                TypeProblem(
                    "function '{}' declares non-function type {}".format(
                        name, definition.type
                    ),
                    rule="T-C-FUN",
                )
            )
        else:
            problems.extend(
                _check_body(
                    checker,
                    definition.body,
                    definition.type,
                    PURE,
                    "body of function '{}'".format(name),
                    "T-C-FUN",
                )
            )
    elif isinstance(definition, PageDef):
        if not definition.arg_type.is_function_free():
            problems.append(
                TypeProblem(
                    "page '{}' has argument type {} which is not →-free — "
                    "page arguments may not capture functions".format(
                        name, definition.arg_type
                    ),
                    rule="T-C-PAGE",
                )
            )
        problems.extend(
            _check_body(
                checker,
                definition.init,
                fun(definition.arg_type, UNIT, STATE),
                PURE,
                "init body of page '{}'".format(name),
                "T-C-PAGE",
            )
        )
        problems.extend(
            _check_body(
                checker,
                definition.render,
                fun(definition.arg_type, UNIT, RENDER),
                PURE,
                "render body of page '{}'".format(name),
                "T-C-PAGE",
            )
        )
    else:
        problems.append(
            TypeProblem("unknown definition kind: {!r}".format(definition))
        )
    return problems


def _check_body(checker, expr, expected, effect, what, rule):
    try:
        actual = checker.check(expr, effect, _empty_env())
    except TypeProblem as problem:
        return [
            TypeProblem(
                "{}: {}".format(what, problem.message),
                rule=problem.rule or rule,
                span=problem.span,
            )
        ]
    if not is_subtype(actual, expected):
        return [
            TypeProblem(
                "{} has type {}, expected {}".format(what, actual, expected),
                rule=rule,
            )
        ]
    return []


def _empty_env():
    from .context import TypeEnv

    return TypeEnv.empty()


def check_code(code, natives=None):
    """``C ⊢ C`` — raise the first :class:`TypeProblem`, if any."""
    problems = code_problems(code, natives)
    if problems:
        raise problems[0]
    return code


def is_well_typed(code, natives=None):
    """Boolean form of ``C ⊢ C``."""
    return not code_problems(code, natives)
