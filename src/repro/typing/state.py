"""System-state typing ``⊢ (C, D, S, P, Q)`` — Fig. 11.

Because runtime values *are* AST values in this reproduction (see
:mod:`repro.eval.values`), every judgment of Fig. 11 is implemented by
running the ordinary expression checker on the stored values:

* ``C ⊢ D`` — every attribute value in the display types at ``Γa(a)``
  (T-B-ATTR); leaves and nesting are always fine (T-B-VAL, T-B-NEST); the
  stale display ``⊥`` types trivially (T-D-INV).
* ``C ⊢ S`` — every store entry's value types purely (T-S-ENTRY).  Fig. 11
  does not require the stored type to match the declaration — that is the
  fix-up relation's job at update time — but we also expose a strict
  variant used by the runtime's internal invariant checks.
* ``C ⊢ P`` — every stack entry names an existing page and its argument
  types at the page's argument type (T-R-ENTRY).
* ``C ⊢ Q`` — exec events hold ``() -s> ()`` thunks (T-Q-EXEC), push
  events hold well-typed page arguments (T-Q-PUSH), pop events are always
  fine (T-Q-POP).
* ``⊢ σ`` — all of the above plus ``C ⊢ C`` and ``page start ∈ C``
  (T-SYS).

These checks back the executable-preservation test-suite: after *every*
system transition the metatheory tests re-derive ``⊢ σ``.

This module is deliberately duck-typed over the system components (they
provide ``items()`` / ``entries()`` / ``events()``) so that the typing
layer never imports the system layer.
"""

from __future__ import annotations

from ..boxes.attributes import ONEDIT_TYPE, ONTAP_TYPE, attribute_type
from ..boxes.tree import AttrSet, Box, Leaf, STALE
from ..core.effects import PURE, STATE
from ..core.errors import TypeProblem
from ..core.names import START_PAGE
from ..core.types import UNIT, fun, is_subtype
from .checker import Checker
from .context import TypeEnv
from .program import code_problems

#: Type required of [exec v] payloads by rule T-Q-EXEC: ``() -s> ()``.
EXEC_THUNK_TYPE = fun(UNIT, UNIT, STATE)


def display_problems(code, display, natives=None):
    """``C ⊢ D`` — all violations in the display (Fig. 11, T-B-* rules)."""
    if display is STALE or display is None:  # T-D-INV (and empty ε)
        return []
    if not isinstance(display, Box):
        return [TypeProblem("display is neither ⊥ nor box content")]
    checker = Checker(code, natives)
    env = TypeEnv.empty()
    problems = []
    for path, box in display.walk():
        for item in box.items:
            if isinstance(item, Leaf):
                problems.extend(
                    _value_problems(
                        checker, item.value, None, env,
                        "posted content at {}".format(path), "T-B-VAL",
                    )
                )
            elif isinstance(item, AttrSet):
                expected = attribute_type(item.name)
                if expected is None:
                    problems.append(
                        TypeProblem(
                            "unknown attribute '{}' in display".format(
                                item.name
                            ),
                            rule="T-B-ATTR",
                        )
                    )
                    continue
                problems.extend(
                    _value_problems(
                        checker, item.value, expected, env,
                        "attribute '{}' at {}".format(item.name, path),
                        "T-B-ATTR",
                    )
                )
    return problems


def store_problems(code, store, natives=None, strict=False):
    """``C ⊢ S`` — rule T-S-ENTRY for every entry.

    With ``strict=True`` additionally require each entry to be *declared*
    in ``C`` at a supertype of the value's type — the invariant the runtime
    maintains between updates (the fix-up relation re-establishes it).
    """
    checker = Checker(code, natives)
    env = TypeEnv.empty()
    problems = []
    for name, value in store.items():
        problems.extend(
            _value_problems(
                checker, value, None, env,
                "store entry '{}'".format(name), "T-S-ENTRY",
            )
        )
        if strict:
            definition = code.global_(name)
            if definition is None:
                problems.append(
                    TypeProblem(
                        "store entry '{}' has no declaration".format(name),
                        rule="T-S-ENTRY",
                    )
                )
            else:
                try:
                    actual = checker.check(value, PURE, env)
                except TypeProblem:
                    continue  # already reported above
                if not is_subtype(actual, definition.type):
                    problems.append(
                        TypeProblem(
                            "store entry '{}' holds {} but is declared "
                            "{}".format(name, actual, definition.type),
                            rule="T-S-ENTRY",
                        )
                    )
    return problems


def stack_problems(code, stack, natives=None):
    """``C ⊢ P`` — rule T-R-ENTRY for every page-stack entry."""
    checker = Checker(code, natives)
    env = TypeEnv.empty()
    problems = []
    for page_name, value in stack.entries():
        page = code.page(page_name)
        if page is None:
            problems.append(
                TypeProblem(
                    "page stack names undefined page '{}'".format(page_name),
                    rule="T-R-ENTRY",
                )
            )
            continue
        problems.extend(
            _value_problems(
                checker, value, page.arg_type, env,
                "argument of stacked page '{}'".format(page_name),
                "T-R-ENTRY",
            )
        )
    return problems


def queue_problems(code, queue, natives=None):
    """``C ⊢ Q`` — rules T-Q-EXEC / T-Q-PUSH / T-Q-POP."""
    from ..system import events as ev  # local import; events dep on core only

    checker = Checker(code, natives)
    env = TypeEnv.empty()
    problems = []
    for event in queue.events():
        if isinstance(event, ev.ExecEvent):
            problems.extend(
                _value_problems(
                    checker, event.thunk, EXEC_THUNK_TYPE, env,
                    "[exec v] payload", "T-Q-EXEC",
                )
            )
        elif isinstance(event, ev.PushEvent):
            page = code.page(event.page)
            if page is None:
                problems.append(
                    TypeProblem(
                        "[push {} v] names an undefined page".format(
                            event.page
                        ),
                        rule="T-Q-PUSH",
                    )
                )
                continue
            problems.extend(
                _value_problems(
                    checker, event.arg, page.arg_type, env,
                    "[push {} v] argument".format(event.page), "T-Q-PUSH",
                )
            )
        elif isinstance(event, ev.PopEvent):
            pass  # T-Q-POP: always well-typed
        else:
            problems.append(
                TypeProblem("unknown event {!r} in queue".format(event))
            )
    return problems


def system_problems(state, natives=None):
    """``⊢ (C, D, S, P, Q)`` — rule T-SYS over a whole system state."""
    code = state.code
    problems = list(code_problems(code, natives))
    if code.page(START_PAGE) is None:
        pass  # already reported by code_problems
    problems.extend(display_problems(code, state.display, natives))
    problems.extend(store_problems(code, state.store, natives))
    problems.extend(stack_problems(code, state.stack, natives))
    problems.extend(queue_problems(code, state.queue, natives))
    return problems


def check_system(state, natives=None):
    """Raise the first violation of ``⊢ σ``, if any; return the state."""
    problems = system_problems(state, natives)
    if problems:
        raise problems[0]
    return state


def _value_problems(checker, value, expected, env, what, rule):
    try:
        actual = checker.check(value, PURE, env)
    except TypeProblem as problem:
        return [
            TypeProblem(
                "{}: {}".format(what, problem.message),
                rule=problem.rule or rule,
            )
        ]
    if expected is not None and not is_subtype(actual, expected):
        return [
            TypeProblem(
                "{} has type {}, expected {}".format(what, actual, expected),
                rule=rule,
            )
        ]
    return []
