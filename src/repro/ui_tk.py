"""Optional tkinter viewer for live sessions.

TouchDevelop's live view runs in a browser; for interactive desktop use
this module renders a :class:`~repro.live.session.LiveSession` into a
tkinter window — box trees become nested Frames, taps become clicks,
editable boxes become Entry widgets, and a source pane live-applies edits
on every keystroke.

tkinter is imported lazily so headless environments (including this
repository's CI) never touch it; call :func:`tk_available` to probe.
Everything the viewer does goes through the same public session API the
tests exercise, so the viewer is a thin shell, not a second
implementation.
"""

from __future__ import annotations

from .boxes.attributes import as_number, as_string
from .boxes.tree import Box, Leaf
from .core import names
from .core.errors import ReproError
from .eval.values import format_for_post


def tk_available():
    """Can tkinter be imported and a display opened?"""
    try:
        import tkinter

        root = tkinter.Tk()
        root.destroy()
        return True
    except Exception:
        return False


class TkLiveViewer:
    """A minimal interactive window over a LiveSession."""

    def __init__(self, session, title="It's Alive!"):
        try:
            import tkinter
            from tkinter import scrolledtext
        except ImportError as missing:
            raise ReproError(
                "tkinter is not available in this environment"
            ) from missing
        self._tk = tkinter
        self.session = session
        self.root = tkinter.Tk()
        self.root.title(title)
        self.live_pane = tkinter.Frame(self.root, bd=1, relief="sunken")
        self.live_pane.pack(side="left", fill="both", expand=True)
        self.code_pane = scrolledtext.ScrolledText(self.root, width=60)
        self.code_pane.pack(side="right", fill="both", expand=True)
        self.code_pane.insert("1.0", session.source)
        self.code_pane.bind("<KeyRelease>", self._on_code_edit)
        self.refresh()

    # -- rendering ---------------------------------------------------------

    def refresh(self):
        for child in self.live_pane.winfo_children():
            child.destroy()
        self._render_box(self.session.display, self.live_pane, ())

    def _render_box(self, box, parent, path):
        tkinter = self._tk
        attrs = box.attributes()
        background = as_string(attrs.get(names.ATTR_BACKGROUND)) or None
        frame = tkinter.Frame(
            parent,
            bd=1 if as_number(attrs.get(names.ATTR_BORDER)) else 0,
            relief="solid" if as_number(attrs.get(names.ATTR_BORDER)) else "flat",
            bg=background.replace(" ", "") if background else None,
            padx=int(as_number(attrs.get(names.ATTR_PADDING)) * 4),
            pady=int(as_number(attrs.get(names.ATTR_PADDING)) * 4),
        )
        horizontal = as_number(attrs.get(names.ATTR_HORIZONTAL)) != 0.0
        side = "left" if horizontal else "top"
        margin = int(as_number(attrs.get(names.ATTR_MARGIN)) * 4)
        frame.pack(side=side, anchor="w", padx=margin, pady=margin)
        if box.has_attr(names.ATTR_ONTAP):
            frame.bind("<Button-1>", lambda _e, p=path: self._on_tap(p))
        child_index = 0
        for item in box.items:
            if isinstance(item, Leaf):
                label = tkinter.Label(
                    frame, text=format_for_post(item.value), bg=background,
                )
                label.pack(side=side, anchor="w")
                if box.has_attr(names.ATTR_ONTAP):
                    label.bind(
                        "<Button-1>", lambda _e, p=path: self._on_tap(p)
                    )
            elif isinstance(item, Box):
                self._render_box(item, frame, path + (child_index,))
                child_index += 1
        return frame

    # -- interaction --------------------------------------------------------

    def _on_tap(self, path):
        self.session.tap(path)
        self.refresh()

    def _on_code_edit(self, _event):
        source = self.code_pane.get("1.0", "end-1c")
        result = self.session.edit_source(source)
        if result.applied:
            self.refresh()

    def run(self):
        """Enter the tk main loop (blocks)."""
        self.root.mainloop()
