"""The calculator example app (handler-dense workload)."""

import pytest

from repro.apps.calculator import calculator_runtime
from repro.core import ast


@pytest.fixture
def calc():
    return calculator_runtime()


def press(calc, *buttons):
    for button in buttons:
        # Digit buttons share their label with the display sometimes;
        # tap the LAST box showing the text (buttons come after the
        # display in document order).
        matches = [
            path
            for path, box in calc.display.walk()
            for leaf in box.leaves()
            if getattr(leaf, "value", None) == button
            and box.has_attr("ontap")
        ]
        assert matches, "no button {!r}".format(button)
        calc.tap(matches[-1])
    return calc


class TestCalculator:
    def test_initial_display(self, calc):
        assert calc.all_texts()[0] == "0"

    def test_digit_entry(self, calc):
        press(calc, "1", "2", "3")
        assert calc.all_texts()[0] == "123"

    def test_addition(self, calc):
        press(calc, "7", "+", "5", "=")
        assert calc.all_texts()[0] == "12"

    def test_chained_operations(self, calc):
        press(calc, "2", "+", "3", "*", "4", "=")
        # Left-to-right: (2+3)*4
        assert calc.all_texts()[0] == "20"

    def test_subtraction_and_clear(self, calc):
        press(calc, "9", "-", "4", "=")
        assert calc.all_texts()[0] == "5"
        press(calc, "C")
        assert calc.all_texts()[0] == "0"

    def test_zero_button(self, calc):
        press(calc, "1", "0", "+", "5", "=")
        assert calc.all_texts()[0] == "15"

    def test_fifteen_handlers_rendered(self, calc):
        # 9 digits + 0 + three operators + '=' + 'C'
        buttons = calc.find_boxes(lambda b: b.has_attr("ontap"))
        assert len(buttons) == 15

    def test_model_is_three_globals(self, calc):
        assert calc.global_value("acc") == ast.Num(0)
        press(calc, "4", "2")
        assert calc.global_value("entry") == ast.Str("42")
