"""The unit-converter example app (editable sugar + derived displays)."""

import pytest

from repro.apps.converter import converter_runtime
from repro.core import ast
from repro.core.errors import EvalError


@pytest.fixture
def runtime():
    return converter_runtime()


class TestConverter:
    def test_initial_derived_values(self, runtime):
        assert runtime.contains_text(" = 68.0 F")
        assert runtime.contains_text(" = 1.609 km")

    def test_editing_recomputes_derived_display(self, runtime):
        runtime.edit(runtime.find_text("20"), "100")
        assert runtime.contains_text(" = 212.0 F")
        assert runtime.global_value("celsius") == ast.Num(100)
        # The other field is untouched.
        assert runtime.contains_text(" = 1.609 km")

    def test_both_fields_independent(self, runtime):
        runtime.edit(runtime.find_text("1"), "26.2")  # a marathon
        assert runtime.contains_text(" = 42.165 km")
        runtime.edit(runtime.find_text("20"), "0")
        assert runtime.contains_text(" = 32.0 F")
        assert runtime.contains_text(" = 42.165 km")

    def test_bad_input_is_a_defined_fault(self):
        runtime = converter_runtime(fault_policy="record")
        runtime.edit(runtime.find_text("20"), "warm")
        assert runtime.faults
        # Model unchanged, app alive.
        assert runtime.global_value("celsius") == ast.Num(20)
        runtime.edit(runtime.find_text("20"), "25")
        assert runtime.contains_text(" = 77.0 F")
