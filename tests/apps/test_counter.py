"""The counter example app."""

from repro.apps.counter import SOURCE, compile_counter, counter_runtime
from repro.core import ast


class TestCounter:
    def test_initial_display(self):
        runtime = counter_runtime()
        assert runtime.all_texts() == ["count: 0", "reset"]

    def test_increment_and_reset(self):
        runtime = counter_runtime()
        runtime.tap_text("count: 0")
        runtime.tap_text("count: 1")
        assert runtime.global_value("count") == ast.Num(2)
        runtime.tap_text("reset")
        assert runtime.all_texts()[0] == "count: 0"

    def test_compiles_with_one_global(self):
        compiled = compile_counter()
        assert [g.name for g in compiled.code.globals()] == ["count"]

    def test_border_attribute_applied(self):
        runtime = counter_runtime()
        shot = runtime.screenshot(width=24)
        assert "+" in shot and "|" in shot
