"""The parametric gallery app (the benchmark workload)."""

from repro.apps.gallery import compile_gallery, gallery_runtime, gallery_source
from repro.core import ast


class TestGallery:
    def test_dimensions_scale(self):
        small = gallery_runtime(rows=2, cols=2)
        big = gallery_runtime(rows=4, cols=3)
        # rows boxes + rows*cols cells + 1 title-less root adjustments
        assert small.display.count_boxes() < big.display.count_boxes()

    def test_cell_count(self):
        runtime = gallery_runtime(rows=3, cols=4)
        cells = [t for t in runtime.all_texts() if t.startswith("[")]
        assert len(cells) == 12

    def test_selection_highlights_cell(self):
        runtime = gallery_runtime(rows=3, cols=3)
        runtime.tap_text("[1.2]")
        assert runtime.global_value("selected") == ast.Num(5)
        highlighted = runtime.find_boxes(
            lambda box: box.get_attr("background") == ast.Str("yellow")
        )
        assert len(highlighted) == 1

    def test_source_parametric(self):
        assert "global rows : number = 7" in gallery_source(rows=7)

    def test_compile_various_sizes(self):
        for rows in (1, 5):
            compiled = compile_gallery(rows=rows, cols=2)
            assert compiled.code.page("start") is not None
