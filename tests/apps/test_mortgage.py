"""The paper's running example: the mortgage calculator (Figs. 1, 3-5)."""

import pytest

from repro.apps.mortgage import (
    BASE_SOURCE,
    apply_i1,
    apply_i2,
    apply_i3,
    compile_mortgage,
    improved_source,
    mortgage_runtime,
)
from repro.core import ast


@pytest.fixture(scope="module")
def started():
    return mortgage_runtime()


def first_listing_label(runtime):
    listing = runtime.global_value("listings").items[0]
    return "{}, {}".format(listing.items[0].value, listing.items[1].value)


class TestStartPage:
    def test_init_downloads_listings(self):
        runtime = mortgage_runtime()
        listings = runtime.global_value("listings")
        assert len(listings.items) == 8
        # One simulated request, charged to the virtual clock.
        web = runtime.system.services.get("web")
        assert web.request_count == 1
        assert runtime.system.services.clock.now == web.latency

    def test_fig1_left_shape(self):
        """Header plus one address + price pair per listing."""
        runtime = mortgage_runtime()
        texts = runtime.all_texts()
        assert "House" in texts and "Hunting" in texts
        addresses = [t for t in texts if ", " in t]
        prices = [t for t in texts if t.startswith("$")]
        assert len(addresses) == 8 and len(prices) == 8

    def test_listings_deterministic(self):
        a = mortgage_runtime().all_texts()
        b = mortgage_runtime().all_texts()
        assert a == b


class TestDetailPage:
    def test_tap_navigates_with_listing_argument(self):
        runtime = mortgage_runtime()
        label = first_listing_label(runtime)
        runtime.tap_text(label)
        assert runtime.page_name() == "detail"
        assert label in runtime.all_texts()

    def test_monthly_payment_formula(self):
        """30y at 4.5% on $335k ≈ $1697.40/month (standard amortization)."""
        runtime = mortgage_runtime()
        runtime.tap_text(first_listing_label(runtime))
        payment = [
            t for t in runtime.all_texts() if "monthly payment" in t
        ][0]
        assert payment == "monthly payment: $1697.40"

    def test_amortization_reaches_zero_ish(self):
        runtime = mortgage_runtime()
        runtime.tap_text(first_listing_label(runtime))
        balances = [t for t in runtime.all_texts() if "balance" in t]
        assert len(balances) == 30
        first = float(balances[0].split(" ")[-1])
        last = float(balances[-1].split(" ")[-1])
        assert last < first
        assert last < 0.05 * first  # nearly paid off by the final year

    def test_editing_term_reruns_render(self):
        runtime = mortgage_runtime()
        runtime.tap_text(first_listing_label(runtime))
        runtime.edit(runtime.find_text("30"), "15")
        assert runtime.global_value("term") == ast.Num(15)
        balances = [t for t in runtime.all_texts() if "balance" in t]
        assert len(balances) == 15

    def test_back_returns_to_listings(self):
        runtime = mortgage_runtime()
        runtime.tap_text(first_listing_label(runtime))
        runtime.tap_text("back")
        assert runtime.page_name() == "start"

    def test_no_new_download_when_navigating(self):
        runtime = mortgage_runtime()
        web = runtime.system.services.get("web")
        runtime.tap_text(first_listing_label(runtime))
        runtime.back()
        assert web.request_count == 1  # listings survive in the model


class TestImprovements:
    def test_each_improvement_compiles(self):
        for improve in (apply_i1, apply_i2, apply_i3):
            compile_mortgage(improve(BASE_SOURCE))

    def test_improvements_compose(self):
        compile_mortgage(improved_source())

    def test_anchors_fail_loudly_if_source_drifts(self):
        from repro.core.errors import ReproError

        with pytest.raises(ReproError):
            apply_i2(apply_i2(BASE_SOURCE))

    def test_i2_formats_dollars_and_cents(self):
        runtime = mortgage_runtime(apply_i2(BASE_SOURCE))
        runtime.tap_text(first_listing_label(runtime))
        balances = [t for t in runtime.all_texts() if "balance" in t]
        for balance in balances:
            amount = balance.split("$")[1]
            _dollars, cents = amount.split(".")
            assert len(cents) == 2

    def test_i3_highlights_every_fifth_row(self):
        runtime = mortgage_runtime(apply_i3(BASE_SOURCE))
        runtime.tap_text(first_listing_label(runtime))
        highlighted = runtime.find_boxes(
            lambda box: box.get_attr("background") == ast.Str("light blue")
        )
        assert len(highlighted) == 6  # years 4, 9, 14, 19, 24, 29

    def test_i1_adds_header_margin(self):
        runtime = mortgage_runtime(apply_i1(BASE_SOURCE))
        margins = runtime.find_boxes(
            lambda box: box.get_attr("margin") == ast.Num(1)
        )
        assert margins
