"""The shopping-list example app."""

import pytest

from repro.apps.shopping import shopping_runtime
from repro.core import ast


@pytest.fixture
def runtime():
    return shopping_runtime()


class TestShopping:
    def test_initial_entries_and_total(self, runtime):
        assert runtime.all_texts()[0] == "Shopping (3 items)"
        assert runtime.contains_text("milk x1")
        assert runtime.contains_text("bread x2")

    def test_add_via_editable_box(self, runtime):
        runtime.edit(runtime.find_text("add: "), "eggs")
        assert runtime.contains_text("eggs x1")
        assert runtime.all_texts()[0] == "Shopping (4 items)"
        # The draft box cleared itself after committing.
        assert runtime.contains_text("add: ")

    def test_empty_edit_adds_nothing(self, runtime):
        runtime.edit(runtime.find_text("add: "), "")
        assert runtime.all_texts()[0] == "Shopping (3 items)"

    def test_bump_quantity(self, runtime):
        runtime.tap(runtime.find_text(" [more]"))
        assert runtime.contains_text("milk x2")
        assert runtime.all_texts()[0] == "Shopping (4 items)"

    def test_delete_entry(self, runtime):
        runtime.tap(runtime.find_text(" [del]"))
        assert not runtime.contains_text("milk x1")
        assert runtime.all_texts()[0] == "Shopping (2 items)"

    def test_detail_page_round_trip(self, runtime):
        runtime.tap_text("bread x2")
        assert runtime.page_name() == "detail"
        assert runtime.contains_text("quantity: 2")
        runtime.tap_text("back")
        assert runtime.page_name() == "start"

    def test_total_is_recomputed_not_maintained(self, runtime):
        """No view-update code anywhere: render recomputes the total."""
        for _ in range(3):
            runtime.tap(runtime.find_text(" [more]"))
        assert runtime.all_texts()[0] == "Shopping (6 items)"
