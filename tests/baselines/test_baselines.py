"""The Section 2 baselines vs live programming — behavioural contracts.

These tests pin down the *qualitative* shape that benchmark E2 then
quantifies: restart pays download+navigation per edit, fix-and-continue
leaves render edits invisible, replay cost grows with history and can
diverge, live pays none of it.
"""

import pytest

from repro.apps.counter import SOURCE as COUNTER
from repro.baselines import (
    FixAndContinueWorkflow,
    LiveWorkflow,
    ReplayWorkflow,
    RestartWorkflow,
)

EDITED = COUNTER.replace('"count: "', '"n = "')
LATENCY = 0.0  # the counter app has no downloads

# A small app with a download in init, like the mortgage example.
DOWNLOADING = (
    "extern fun fetch_listings() : list number is state\n"
    "global data : list number = nil(number)\n"
    "page start()\n  init\n    data := fetch_listings()\n"
    "  render\n    boxed\n      post \"n = \" || length(data)\n"
    "      on tap do\n        pop\n"
)
DOWNLOADING_EDIT = DOWNLOADING.replace('"n = "', '"count = "')


def downloading_impls():
    def fetch(services):
        services.get("web").fetch("/listings")
        return [1.0, 2.0, 3.0]

    return {"fetch_listings": fetch}


class TestRestart:
    def test_restart_pays_download_every_edit(self):
        workflow = RestartWorkflow(
            DOWNLOADING, host_impls=downloading_impls(), latency=2.0
        )
        for _ in range(3):
            metrics = workflow.apply_edit(DOWNLOADING_EDIT)
            # A fresh clock each boot: exactly one download charged.
            assert metrics.virtual_seconds == 2.0
            assert metrics.visible

    def test_restart_replays_navigation(self):
        workflow = RestartWorkflow(
            COUNTER,
            navigation=[("tap_text", "count: 0"), ("tap_text", "count: 1")],
        )
        metrics = workflow.apply_edit(COUNTER)
        assert metrics.navigation_actions == 2
        # ...and the model state reflects only the replayed actions.
        assert workflow.runtime.all_texts()[0] == "count: 2"

    def test_restart_loses_unscripted_state(self):
        workflow = RestartWorkflow(COUNTER)
        workflow.runtime.tap_text("count: 0")
        workflow.apply_edit(EDITED)
        assert workflow.runtime.all_texts()[0] == "n = 0"  # count lost


class TestFixAndContinue:
    def test_render_edit_invisible(self):
        """'Changing the code that initially builds this widget tree is
        meaningless as that code has already executed.'"""
        workflow = FixAndContinueWorkflow(COUNTER)
        metrics = workflow.apply_edit(EDITED)
        assert not metrics.visible
        assert workflow.retained_display.children()[0].leaves()[0].value == (
            "count: 0"
        )

    def test_noop_edit_trivially_visible(self):
        workflow = FixAndContinueWorkflow(COUNTER)
        metrics = workflow.apply_edit(COUNTER)
        assert metrics.visible

    def test_state_survives_and_poke_reveals_edit(self):
        workflow = FixAndContinueWorkflow(COUNTER)
        workflow.poke(("tap_text", "count: 0"))
        workflow.apply_edit(EDITED)
        display = workflow.poke(("tap_text", "n = 1"))
        texts = [
            leaf.value for _p, box in display.walk()
            for leaf in box.leaves()
        ]
        assert "n = 2" in texts


class TestReplay:
    def test_replay_restores_state(self):
        workflow = ReplayWorkflow(COUNTER)
        workflow.act("tap_text", "count: 0")
        workflow.act("tap_text", "count: 1")
        outcome = workflow.apply_edit(COUNTER)
        assert not outcome.diverged
        assert outcome.replayed_actions == 2
        assert workflow.runtime.all_texts()[0] == "count: 2"

    def test_replay_cost_includes_whole_history(self):
        workflow = ReplayWorkflow(
            DOWNLOADING, host_impls=downloading_impls(), latency=1.0
        )
        outcome = workflow.apply_edit(DOWNLOADING_EDIT)
        assert outcome.virtual_seconds == 1.0
        assert outcome.navigation_actions == 0

    def test_replay_diverges_on_changed_labels(self):
        """'Code changes can cause the re-execution to diverge from the
        previous trace.'"""
        workflow = ReplayWorkflow(COUNTER)
        workflow.act("tap_text", "count: 0")
        outcome = workflow.apply_edit(EDITED)  # "count: 0" no longer shown
        assert outcome.diverged
        assert "count: 0" in outcome.divergence_reason
        assert not outcome.visible


class TestLive:
    def test_live_edit_is_visible_without_redownload(self):
        workflow = LiveWorkflow(
            DOWNLOADING, host_impls=downloading_impls(), latency=2.0
        )
        metrics = workflow.apply_edit(DOWNLOADING_EDIT)
        assert metrics.visible
        assert metrics.virtual_seconds == 0.0
        assert metrics.navigation_actions == 0

    def test_live_keeps_interactive_state(self):
        workflow = LiveWorkflow(COUNTER)
        workflow.act("tap_text", "count: 0")
        workflow.apply_edit(EDITED)
        texts = workflow.session.runtime.all_texts()
        assert texts[0] == "n = 1"

    def test_broken_edit_reports_invisible(self):
        workflow = LiveWorkflow(COUNTER)
        metrics = workflow.apply_edit("garbage(")
        assert not metrics.visible
