"""The attribute environment Γa and value converters."""

import pytest

from repro.boxes.attributes import (
    ATTRIBUTE_ENV,
    ONEDIT_TYPE,
    ONTAP_TYPE,
    as_number,
    as_string,
    attribute_spec,
    attribute_type,
    handler_attributes,
    manipulable_attributes,
)
from repro.core import ast
from repro.core.effects import STATE
from repro.core.errors import ReproError
from repro.core.types import NUMBER, STRING, UNIT, fun


class TestEnvironment:
    def test_paper_examples(self):
        """Γa gives ontap : () -s> () and margin : number (Section 4.3)."""
        assert attribute_type("ontap") == fun(UNIT, UNIT, STATE)
        assert attribute_type("margin") == NUMBER

    def test_onedit_receives_text(self):
        assert ONEDIT_TYPE.param == STRING

    def test_unknown_attribute(self):
        assert attribute_type("zorp") is None
        with pytest.raises(ReproError):
            attribute_spec("zorp")

    def test_handlers_not_manipulable(self):
        """Direct manipulation must not offer to write closures."""
        manipulable = {spec.name for spec in manipulable_attributes()}
        for handler in handler_attributes():
            assert handler not in manipulable

    def test_every_spec_consistent(self):
        for name, spec in ATTRIBUTE_ENV.items():
            assert spec.name == name
            assert attribute_type(name) == spec.type

    def test_i1_and_i3_attributes_manipulable(self):
        manipulable = {spec.name for spec in manipulable_attributes()}
        assert "margin" in manipulable      # I1
        assert "background" in manipulable  # I3 (could be done either way)


class TestConverters:
    def test_as_number_from_ast(self):
        assert as_number(ast.Num(2.5)) == 2.5

    def test_as_number_from_python(self):
        assert as_number(3) == 3.0
        assert as_number(None, default=7.0) == 7.0

    def test_as_number_rejects_strings_and_bools(self):
        with pytest.raises(ReproError):
            as_number("3")
        with pytest.raises(ReproError):
            as_number(True)

    def test_as_string_from_ast(self):
        assert as_string(ast.Str("blue")) == "blue"

    def test_as_string_default(self):
        assert as_string(None) == ""

    def test_as_string_rejects_numbers(self):
        with pytest.raises(ReproError):
            as_string(3)
