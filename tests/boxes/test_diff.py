"""The Section 5 reuse optimization: structural sharing across renders."""

import pytest

from repro.boxes.diff import DiffStats, reuse, tree_equal
from repro.boxes.tree import Box, make_root
from repro.core import ast


def leafy_box(text, box_id=None, occurrence=None):
    box = Box(box_id=box_id, occurrence=occurrence)
    box.append_leaf(ast.Str(text))
    return box


def row_tree(texts):
    root = make_root()
    for index, text in enumerate(texts):
        root.append_child(leafy_box(text, box_id=1, occurrence=index))
    return root.freeze()


class TestReuseIdentity:
    def test_identical_trees_fully_shared(self):
        old = row_tree(["a", "b", "c"])
        new = row_tree(["a", "b", "c"])
        stats = DiffStats()
        result = reuse(old, new, stats)
        assert result is old
        assert stats.reused_boxes == 4 and stats.rebuilt_boxes == 0

    def test_no_previous_display(self):
        new = row_tree(["a"])
        stats = DiffStats()
        assert reuse(None, new, stats) is new
        assert stats.reused_boxes == 0

    def test_result_always_structurally_equal_to_new(self):
        old = row_tree(["a", "b", "c"])
        for texts in (["a", "b"], ["a", "x", "c"], ["z", "a", "b", "c"]):
            new = row_tree(texts)
            assert tree_equal(reuse(old, new), new)


class TestPartialSharing:
    def test_one_changed_row_rebuilds_only_spine_and_row(self):
        old = row_tree(["a", "b", "c", "d"])
        new = row_tree(["a", "X", "c", "d"])
        stats = DiffStats()
        result = reuse(old, new, stats)
        # Unchanged rows are the same objects as in the old tree.
        assert result.children()[0] is old.children()[0]
        assert result.children()[2] is old.children()[2]
        assert result.children()[3] is old.children()[3]
        # Exactly the root spine and the changed row were rebuilt.
        assert stats.rebuilt_boxes == 2
        assert stats.reused_boxes == 3

    def test_appended_row_reuses_prefix(self):
        old = row_tree(["a", "b"])
        new = row_tree(["a", "b", "c"])
        result = reuse(old, new)
        assert result.children()[0] is old.children()[0]
        assert result.children()[1] is old.children()[1]

    def test_attr_change_on_root_keeps_children(self):
        old = make_root()
        old.append_attr("margin", ast.Num(1))
        old.append_child(leafy_box("x", box_id=1, occurrence=0))
        old.freeze()
        new = make_root()
        new.append_attr("margin", ast.Num(2))
        new.append_child(leafy_box("x", box_id=1, occurrence=0))
        new.freeze()
        result = reuse(old, new)
        assert result.get_attr("margin") == ast.Num(2)
        assert result.children()[0] is old.children()[0]

    def test_box_id_mismatch_not_merged(self):
        old = make_root()
        old.append_child(leafy_box("x", box_id=1, occurrence=0))
        old.freeze()
        new = make_root()
        new.append_child(leafy_box("x", box_id=2, occurrence=0))
        new.append_child(leafy_box("y", box_id=3, occurrence=0))
        new.freeze()
        result = reuse(old, new)
        assert tree_equal(result, new)

    def test_reuse_fraction(self):
        stats = DiffStats(reused_boxes=3, rebuilt_boxes=1)
        assert stats.reuse_fraction == 0.75
        assert DiffStats().reuse_fraction == 0.0


class TestDeepTrees:
    def test_deep_change_keeps_unrelated_subtrees(self):
        def deep(text):
            root = make_root()
            left = Box(box_id=1, occurrence=0)
            left.append_child(leafy_box(text, box_id=2, occurrence=0))
            root.append_child(left)
            root.append_child(leafy_box("stable", box_id=3, occurrence=0))
            return root.freeze()

        old, new = deep("a"), deep("b")
        result = reuse(old, new)
        assert result.children()[1] is old.children()[1]
        assert result.children()[0].children()[0].leaves() == [ast.Str("b")]
