"""Box paths: resolution, formatting, creator lookup, handler bubbling."""

import pytest

from repro.boxes.paths import (
    boxes_created_by,
    format_path,
    innermost_box_with_attr,
    parent,
    parse_path,
    resolve,
)
from repro.boxes.tree import Box, make_root
from repro.core import ast
from repro.core.errors import ReproError


def tree():
    root = make_root()
    a = Box(box_id=1, occurrence=0)
    a.append_attr("ontap", ast.Str("handler-a"))
    inner = Box(box_id=2, occurrence=0)
    a.append_child(inner)
    root.append_child(a)
    b = Box(box_id=1, occurrence=1)
    root.append_child(b)
    return root


class TestResolve:
    def test_root(self):
        t = tree()
        assert resolve(t, ()) is t

    def test_deep(self):
        t = tree()
        assert resolve(t, (0, 0)).box_id == 2

    def test_off_tree_raises(self):
        with pytest.raises(ReproError):
            resolve(tree(), (5,))


class TestFormatting:
    @pytest.mark.parametrize("path", [(), (0,), (0, 1, 2)])
    def test_round_trip(self, path):
        assert parse_path(format_path(path)) == path

    def test_root_formats_as_slash(self):
        assert format_path(()) == "/"

    def test_malformed(self):
        with pytest.raises(ReproError):
            parse_path("0/1")
        with pytest.raises(ReproError):
            parse_path("/x")

    def test_parent(self):
        assert parent((0, 1)) == (0,)
        assert parent(()) is None


class TestCreatorLookup:
    def test_loop_statement_creates_many(self):
        hits = boxes_created_by(tree(), 1)
        assert [path for path, _ in hits] == [(0,), (1,)]

    def test_single(self):
        hits = boxes_created_by(tree(), 2)
        assert [path for path, _ in hits] == [(0, 0)]

    def test_none(self):
        assert boxes_created_by(tree(), 99) == []


class TestBubbling:
    def test_direct_hit(self):
        path, box = innermost_box_with_attr(tree(), (0,), "ontap")
        assert path == (0,) and box.box_id == 1

    def test_bubbles_to_ancestor(self):
        path, _box = innermost_box_with_attr(tree(), (0, 0), "ontap")
        assert path == (0,)

    def test_no_handler_anywhere(self):
        path, box = innermost_box_with_attr(tree(), (1,), "ontap")
        assert path is None and box is None
