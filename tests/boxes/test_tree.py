"""Box trees (Fig. 7's B): construction, queries, freezing, equality."""

import pytest

from repro.boxes.tree import AttrSet, Box, Leaf, STALE, make_root
from repro.core import ast
from repro.core.errors import ReproError


def small_tree():
    root = make_root()
    root.append_attr("margin", ast.Num(1))
    root.append_leaf(ast.Str("title"))
    child = Box(box_id=1, occurrence=0)
    child.append_leaf(ast.Str("body"))
    child.append_attr("background", ast.Str("yellow"))
    root.append_child(child)
    second = Box(box_id=1, occurrence=1)
    root.append_child(second)
    return root


class TestConstruction:
    def test_item_order_preserved(self):
        root = small_tree()
        kinds = [type(item).__name__ for item in root.items]
        assert kinds == ["AttrSet", "Leaf", "Box", "Box"]

    def test_children_and_leaves(self):
        root = small_tree()
        assert len(root.children()) == 2
        assert root.leaves() == [ast.Str("title")]

    def test_append_child_type_checked(self):
        with pytest.raises(ReproError):
            make_root().append_child("not a box")

    def test_counts(self):
        root = small_tree()
        assert root.count_boxes() == 3
        assert root.count_items() == 6


class TestAttributes:
    def test_last_write_wins(self):
        box = Box()
        box.append_attr("margin", ast.Num(1))
        box.append_attr("margin", ast.Num(2))
        assert box.get_attr("margin") == ast.Num(2)
        assert box.attributes() == {"margin": ast.Num(2)}

    def test_has_attr(self):
        root = small_tree()
        assert root.has_attr("margin")
        assert not root.has_attr("ontap")

    def test_get_attr_default(self):
        assert Box().get_attr("margin", ast.Num(9)) == ast.Num(9)


class TestWalkAndPaths:
    def test_walk_preorder_with_paths(self):
        root = small_tree()
        paths = [path for path, _box in root.walk()]
        assert paths == [(), (0,), (1,)]

    def test_child_indexing(self):
        root = small_tree()
        assert root.child(0).occurrence == 0
        with pytest.raises(ReproError):
            root.child(5)


class TestFreezing:
    def test_frozen_rejects_mutation(self):
        root = small_tree().freeze()
        with pytest.raises(ReproError):
            root.append_leaf(ast.Num(1))
        with pytest.raises(ReproError):
            root.children()[0].append_attr("margin", ast.Num(1))


class TestEquality:
    def test_structural(self):
        assert small_tree() == small_tree()

    def test_metadata_ignored(self):
        a = Box(box_id=1, occurrence=0)
        b = Box(box_id=99, occurrence=7)
        assert a == b

    def test_content_difference_detected(self):
        a = Box()
        a.append_leaf(ast.Num(1))
        b = Box()
        b.append_leaf(ast.Num(2))
        assert a != b


class TestStale:
    def test_singleton(self):
        from repro.boxes.tree import _Stale

        assert _Stale() is STALE

    def test_repr_is_bottom(self):
        assert repr(STALE) == "⊥"


class TestDump:
    def test_dump_mentions_everything(self):
        text = small_tree().dump()
        assert "title" in text and "background" in text
        assert "box#1/0" in text and "box#1/1" in text
