"""repro.cluster — sharded serving, transport, shared memo tier."""
