"""Respawn backoff: a crash-looping worker cannot hot-spin the
supervisor.

These tests never launch real worker processes — ``_spawn`` is replaced
with a fake that installs a controllable process object, so the
backoff arithmetic (streak counting, jittered exponential delays, the
armed window refusing to spawn) is exercised in isolation and fast.
"""

import subprocess
import time

import pytest

from repro.cluster.supervisor import (
    RESPAWN_BACKOFF_BASE,
    RESPAWN_BACKOFF_CAP,
    RESPAWN_STABLE_SECONDS,
    ClusterSupervisor,
    WorkerDied,
)
from repro.obs.trace import Tracer


class FakeProcess:
    def __init__(self):
        self.returncode = None
        self.pid = 4242

    def poll(self):
        return self.returncode

    def wait(self, timeout=None):
        if self.returncode is None:
            raise subprocess.TimeoutExpired("fake-worker", timeout)
        return self.returncode


@pytest.fixture
def supervisor(tmp_path, monkeypatch):
    supervisor = ClusterSupervisor(
        workers=1, journal_root=str(tmp_path),
        shared_cache=False, tracer=Tracer(),
    )
    spawned = []

    def fake_spawn(slot):
        slot.process = FakeProcess()
        slot.last_spawn = time.monotonic()
        spawned.append(slot.slot)

    monkeypatch.setattr(supervisor, "_spawn", fake_spawn)
    supervisor.spawned = spawned
    return supervisor


def kill(supervisor, code=1):
    supervisor._slots[0].process.returncode = code


class TestRespawnBackoff:
    def test_first_revive_spawns_without_backoff(self, supervisor):
        assert supervisor.revive(0) is True
        slot = supervisor._slots[0]
        assert slot.crash_streak == 0
        assert slot.backoff_until is None
        metrics = supervisor.tracer.metrics()
        assert metrics["cluster.worker_respawn_backoffs"] == 0

    def test_rapid_death_arms_a_jittered_backoff(self, supervisor):
        supervisor.revive(0)
        kill(supervisor)
        assert supervisor.revive(0) is True  # respawns, then arms
        slot = supervisor._slots[0]
        assert slot.crash_streak == 1
        remaining = slot.backoff_until - time.monotonic()
        assert 0 < remaining <= RESPAWN_BACKOFF_BASE * 1.25
        metrics = supervisor.tracer.metrics()
        assert metrics["cluster.worker_respawns"] == 2
        assert metrics["cluster.worker_respawn_backoffs"] == 1

    def test_armed_window_refuses_to_spawn(self, supervisor):
        supervisor.revive(0)
        kill(supervisor)
        supervisor.revive(0)
        kill(supervisor)
        spawns_before = len(supervisor.spawned)
        with pytest.raises(WorkerDied) as excinfo:
            supervisor.revive(0)
        assert "backoff" in str(excinfo.value)
        assert len(supervisor.spawned) == spawns_before

    def test_streak_grows_the_delay_exponentially(self, supervisor):
        supervisor.revive(0)
        for streak in (1, 2, 3):
            kill(supervisor)
            slot = supervisor._slots[0]
            slot.backoff_until = time.monotonic() - 0.01  # window over
            assert supervisor.revive(0) is True
            assert slot.crash_streak == streak
            delay = slot.backoff_until - time.monotonic()
            ideal = min(
                RESPAWN_BACKOFF_CAP,
                RESPAWN_BACKOFF_BASE * 2 ** (streak - 1),
            )
            assert ideal * 0.7 < delay <= ideal * 1.25

    def test_a_stable_run_resets_the_streak(self, supervisor):
        supervisor.revive(0)
        kill(supervisor)
        slot = supervisor._slots[0]
        slot.backoff_until = None
        supervisor.revive(0)
        assert slot.crash_streak == 1
        # The replacement survives past the stability threshold...
        slot.last_spawn = time.monotonic() - RESPAWN_STABLE_SECONDS - 1
        slot.backoff_until = time.monotonic() - 0.01
        kill(supervisor)
        supervisor.revive(0)
        # ...so its next death is not a crash loop.
        assert slot.crash_streak == 0
        assert slot.backoff_until is None

    def test_alive_worker_is_left_alone(self, supervisor):
        supervisor.revive(0)
        assert supervisor.revive(0) is False
        assert len(supervisor.spawned) == 1

    def test_healthz_reports_the_armed_window(self, supervisor):
        supervisor.revive(0)
        kill(supervisor)
        supervisor.revive(0)
        kill(supervisor)
        info = supervisor.healthz()["workers"][0]
        assert info["respawn_backoff_seconds"] > 0
        assert info["crash_streak"] == 1
        assert not supervisor.healthz()["ok"]
