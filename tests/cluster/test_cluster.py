"""End-to-end sharded serving: routing, chaos, rebalance, shared cache.

These tests spawn real worker subprocesses.  The acceptance bar for the
chaos path is the resilience story's cluster form: ``kill -9`` of any
worker must be invisible to clients beyond latency — same bytes, a
display generation that only moves forward, no untyped error.
"""

import json
import os
import shutil
import signal
import threading
import time
import urllib.request

import pytest

from repro.api import Tracer
from repro.apps.counter import SOURCE as COUNTER
from repro.apps.gallery import function_gallery_source
from repro.cluster import ClusterRouter, ClusterSupervisor
from repro.serve.app import make_server


def make_cluster(source=COUNTER, workers=2, **kwargs):
    supervisor = ClusterSupervisor(
        source=source, workers=workers, tracer=Tracer(),
        ping_interval=0.2, **kwargs
    ).start()
    return supervisor, ClusterRouter(supervisor)


def stop_cluster(supervisor):
    root = supervisor.journal_root
    supervisor.stop()
    shutil.rmtree(root, ignore_errors=True)


@pytest.fixture(scope="module")
def cluster():
    supervisor, router = make_cluster()
    try:
        yield supervisor, router
    finally:
        stop_cluster(supervisor)


def open_session(router):
    created = router.dispatch({"op": "create"})
    assert created["ok"], created
    return created["token"]


class TestRouting:
    def test_create_tap_render_flow(self, cluster):
        _supervisor, router = cluster
        token = open_session(router)
        tapped = router.dispatch(
            {"op": "tap", "token": token, "text": "count: 0"}
        )
        assert tapped["ok"], tapped
        rendered = router.dispatch({"op": "render", "token": token})
        assert rendered["ok"]
        assert "count: 1" in rendered["html"]

    def test_sessions_spread_over_workers(self, cluster):
        supervisor, router = cluster
        slots = {
            supervisor.slot_for(open_session(router)) for _ in range(12)
        }
        assert slots == {0, 1}

    def test_internal_ops_are_refused_at_the_front(self, cluster):
        _supervisor, router = cluster
        for op in ("__status__", "__drain__", "__adopt__"):
            reply = router.dispatch({"op": op})
            assert reply["ok"] is False
            assert reply["error"]["type"] == "BadRequest"

    def test_unknown_op_and_missing_token_are_typed(self, cluster):
        _supervisor, router = cluster
        assert router.dispatch({"op": "frobnicate"})["ok"] is False
        missing = router.dispatch({"op": "render"})
        assert missing["ok"] is False
        assert missing["error"]["type"] == "BadRequest"

    def test_stats_aggregate_across_workers(self, cluster):
        _supervisor, router = cluster
        open_session(router)
        reply = router.dispatch({"op": "stats"})
        assert reply["ok"]
        stats = reply["stats"]
        assert stats["sessions"] >= 1
        assert len(stats["workers"]) == 2
        assert stats["metrics"]["cluster.requests_routed"] > 0
        assert "shared_cache" in stats

    def test_healthz_reports_both_workers(self, cluster):
        supervisor, _router = cluster
        health = supervisor.healthz()
        assert health["ok"] is True
        assert len(health["workers"]) == 2
        for worker in health["workers"]:
            assert worker["alive"] is True
            assert worker["pid"] > 0


class TestChaos:
    def test_kill_dash_nine_is_invisible_beyond_latency(self, cluster):
        supervisor, router = cluster
        token = open_session(router)
        router.dispatch({"op": "tap", "token": token, "text": "count: 0"})
        before = router.dispatch({"op": "render", "token": token})
        assert before["ok"]

        slot = supervisor.slot_for(token)
        victim = supervisor._slots[slot]
        pid = victim.process.pid
        restarts_before = victim.restarts
        os.kill(pid, signal.SIGKILL)
        victim.process.wait()

        # The next request rides revive-and-retry: the journal rebuilds
        # the session in a fresh process and the reply is byte-identical.
        after = router.dispatch({"op": "render", "token": token})
        assert after["ok"], after
        assert after["html"] == before["html"]
        assert victim.restarts == restarts_before + 1
        assert victim.process.pid != pid

        # State keeps moving forward: no acknowledged tap was lost and
        # the display generation is strictly increasing.
        router.dispatch({"op": "tap", "token": token, "text": "count: 1"})
        final = router.dispatch({"op": "render", "token": token})
        assert "count: 2" in final["html"]
        assert final["generation"] > after["generation"]

    def test_monitor_respawns_without_traffic(self, cluster):
        supervisor, router = cluster
        token = open_session(router)
        slot = supervisor.slot_for(token)
        victim = supervisor._slots[slot]
        os.kill(victim.process.pid, signal.SIGKILL)
        victim.process.wait()
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline and not victim.alive:
            time.sleep(0.05)
        assert victim.alive  # the liveness loop noticed, no request needed
        rendered = router.dispatch({"op": "render", "token": token})
        assert rendered["ok"]


class TestRetire:
    def test_retire_rebalances_sessions_to_heirs(self):
        supervisor, router = make_cluster()
        try:
            tokens = [open_session(router) for _ in range(6)]
            counts = {}
            for token in tokens:
                router.dispatch(
                    {"op": "tap", "token": token, "text": "count: 0"}
                )
                counts[token] = router.dispatch(
                    {"op": "render", "token": token}
                )["html"]
            victim = supervisor.slot_for(tokens[0])
            moves = supervisor.retire(victim)
            assert all(heir != victim for _token, heir in moves)
            # Every session keeps serving from its heir with its state.
            for token in tokens:
                assert supervisor.slot_for(token) != victim
                rendered = router.dispatch({"op": "render", "token": token})
                assert rendered["ok"], rendered
                assert "count: 1" in rendered["html"]
        finally:
            stop_cluster(supervisor)

    def test_last_worker_cannot_retire(self):
        supervisor, _router = make_cluster(workers=1)
        try:
            with pytest.raises(Exception):
                supervisor.retire(0)
        finally:
            stop_cluster(supervisor)


class TestSharedCache:
    def test_two_sessions_same_app_share_render_work(self):
        supervisor, router = make_cluster(
            source=function_gallery_source(rows=4, cols=3)
        )
        try:
            for _ in range(6):
                token = open_session(router)
                assert router.dispatch(
                    {"op": "render", "token": token}
                )["ok"]
            metrics = router.dispatch({"op": "stats"})["stats"]["metrics"]
            assert metrics["cluster.memo.shared_hits"] > 0
            assert metrics["cluster.memo.publishes"] > 0
        finally:
            stop_cluster(supervisor)


class TestHTTPFront:
    def test_cluster_behind_http(self, cluster):
        _supervisor, router = cluster
        server = make_server(router)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            request = urllib.request.Request(
                "http://127.0.0.1:{}/".format(port),
                data=json.dumps({"op": "create"}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request) as response:
                created = json.loads(response.read())
            assert created["ok"]
            health_url = "http://127.0.0.1:{}/healthz".format(port)
            with urllib.request.urlopen(health_url) as response:
                health = json.loads(response.read())
            assert health["ok"] is True
            assert health["role"] == "cluster"
        finally:
            server.shutdown()
            server.server_close()
