"""The cross-process memo tier: cache server, client, tiered store."""

import pickle
import threading
import time

import pytest

from repro.api import Tracer
from repro.cluster import CacheClient, CacheServer, TieredMemoStore
from repro.cluster.transport import FrameClient
from repro.incremental import MemoEntry
from repro.incremental.store import REMOTE_ORIGIN


def entry(tag, origin="session-a"):
    # ``reads`` slots are mutable [name, version, value] triples — the
    # shape the validator re-stamps in place.
    return MemoEntry(
        digest="d{}".format(tag), arg=None,
        reads=[["g", 7, 42]], items=[], value=tag, boxes=0,
        origin=origin,
    )


@pytest.fixture
def tier():
    server = CacheServer(lease_timeout=0.05).start()
    clients = []

    def connect(tracer=None):
        client = CacheClient(server.address, tracer=tracer)
        clients.append(client)
        return client

    try:
        yield server, connect
    finally:
        for client in clients:
            client.close()
        server.stop()


def raw_roundtrip(server, request):
    client = FrameClient(server.address)
    try:
        return pickle.loads(client.request(pickle.dumps(request)))
    finally:
        client.close()


class TestCacheServer:
    def test_put_get_roundtrip(self, tier):
        server, _connect = tier
        assert raw_roundtrip(server, ("get", b"k")) == ("miss",)
        assert raw_roundtrip(server, ("put", b"k", b"blob")) == ("ok",)
        assert raw_roundtrip(server, ("get", b"k")) == ("hit", b"blob")

    def test_clear_bumps_epoch_and_invalidates(self, tier):
        server, _connect = tier
        raw_roundtrip(server, ("put", b"k", b"blob"))
        assert raw_roundtrip(server, ("clear",)) == ("ok",)
        assert raw_roundtrip(server, ("get", b"k")) == ("miss",)
        assert raw_roundtrip(server, ("stats",))[1]["epoch"] == 2

    def test_lru_eviction(self):
        server = CacheServer(max_entries=2, lease_timeout=0.01).start()
        try:
            raw_roundtrip(server, ("put", b"a", b"1"))
            raw_roundtrip(server, ("put", b"b", b"2"))
            raw_roundtrip(server, ("get", b"a"))   # refresh a; b is LRU
            raw_roundtrip(server, ("put", b"c", b"3"))
            assert raw_roundtrip(server, ("get", b"b")) == ("miss",)
            assert raw_roundtrip(server, ("get", b"a")) == ("hit", b"1")
            assert raw_roundtrip(server, ("stats",))[1]["evictions"] == 1
        finally:
            server.stop()

    def test_bad_frame_is_a_typed_error_reply(self, tier):
        server, _connect = tier
        reply = raw_roundtrip(server, ("frobnicate",))
        assert reply[0] == "error"

    def test_single_flight_lease(self):
        server = CacheServer(lease_timeout=2.0).start()
        try:
            # First getter misses immediately and takes the lease.
            started = time.perf_counter()
            assert raw_roundtrip(server, ("get", b"k")) == ("miss",)
            assert time.perf_counter() - started < 0.5

            # A concurrent getter waits for the holder's publish...
            replies = []
            waiter = threading.Thread(
                target=lambda: replies.append(
                    raw_roundtrip(server, ("get", b"k"))
                )
            )
            waiter.start()
            time.sleep(0.1)
            raw_roundtrip(server, ("put", b"k", b"computed"))
            waiter.join(timeout=5)
            # ...and leaves with the entry instead of recomputing.
            assert replies == [("hit", b"computed")]
            stats = raw_roundtrip(server, ("stats",))[1]
            assert stats["lease_waits"] >= 1
            assert stats["lease_hits"] >= 1
        finally:
            server.stop()

    def test_expired_lease_falls_back_to_miss(self):
        server = CacheServer(lease_timeout=0.05).start()
        try:
            assert raw_roundtrip(server, ("get", b"k")) == ("miss",)
            time.sleep(0.1)  # the holder never publishes
            assert raw_roundtrip(server, ("get", b"k")) == ("miss",)
        finally:
            server.stop()


class TestCacheClient:
    def test_publish_and_get(self, tier):
        server, connect = tier
        client = connect(tracer=Tracer())
        client.put(b"k", b"blob")
        assert client.flush(timeout=5)
        assert client.get(b"k") == b"blob"
        assert client.get(b"absent") is None

    def test_batched_publishes_all_arrive(self, tier):
        server, connect = tier
        client = connect()
        for n in range(100):
            client.put("k{}".format(n).encode(), b"v")
        assert client.flush(timeout=5)
        # Allow the last in-flight batch to land.
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if raw_roundtrip(server, ("stats",))[1]["puts"] >= 100:
                break
            time.sleep(0.01)
        assert raw_roundtrip(server, ("stats",))[1]["puts"] >= 100

    def test_dead_server_degrades_to_cache_off(self):
        server = CacheServer().start()
        address = server.address
        server.stop()
        tracer = Tracer()
        client = CacheClient(address, timeout=0.5, tracer=tracer)
        try:
            assert client.get(b"k") is None  # no exception escapes
            client.put(b"k", b"blob")
            client.flush(timeout=1)
            metrics = tracer.metrics()
            assert metrics["cluster.memo.remote_errors"] >= 1
        finally:
            client.close()


class TestTieredMemoStore:
    def test_import_restamps_reads_and_origin(self, tier):
        _server, connect = tier
        producer_tracer = Tracer()
        producer = TieredMemoStore(
            connect(tracer=producer_tracer), tracer=producer_tracer
        )
        produced = entry(1, origin="session-a")
        producer.put(("d1", None), produced)
        assert producer._client.flush(timeout=5)

        importer_tracer = Tracer()
        importer = TieredMemoStore(
            connect(tracer=importer_tracer), tracer=importer_tracer
        )
        imported = importer.get(("d1", None))
        assert imported is not None
        assert imported.value == 1
        # Foreign version stamps can never validate by integer compare:
        # every read slot is re-stamped -1, forcing the value path.
        assert [read[1] for read in imported.reads] == [-1]
        assert imported.origin == REMOTE_ORIGIN
        assert importer_tracer.metrics()["cluster.memo.remote_hits"] == 1
        # The import landed in L1: the next get is local.
        assert importer.get(("d1", None)) is imported

    def test_local_hit_skips_the_remote_tier(self, tier):
        _server, connect = tier
        tracer = Tracer()
        store = TieredMemoStore(connect(tracer=tracer), tracer=tracer)
        store.put(("d1", None), entry(1))
        store.get(("d1", None))
        metrics = tracer.metrics()
        assert metrics["cluster.memo.remote_hits"] == 0
        assert metrics["cluster.memo.remote_misses"] == 0

    def test_clear_nukes_both_tiers(self, tier):
        server, connect = tier
        store = TieredMemoStore(connect())
        store.put(("d1", None), entry(1))
        assert store._client.flush(timeout=5)
        store.clear()
        assert len(store) == 0
        # A fresh store sees nothing remotely either.
        other = TieredMemoStore(connect(tracer=Tracer()))
        assert other.get(("d1", None)) is None

    def test_miss_streak_backs_off_remote_probes(self, tier):
        _server, connect = tier
        tracer = Tracer()
        store = TieredMemoStore(connect(tracer=tracer), tracer=tracer)
        probes = store.MISS_STREAK + 40
        for n in range(probes):
            assert store.get(("absent-{}".format(n), None)) is None
        metrics = tracer.metrics()
        # After MISS_STREAK consecutive misses the store stops paying a
        # round trip per probe (a cold program is cold everywhere)...
        assert metrics["cluster.memo.remote_skips"] > 0
        assert (metrics["cluster.memo.remote_misses"]
                + metrics["cluster.memo.remote_skips"]) == probes
        assert metrics["cluster.memo.remote_misses"] < probes

    def test_unpicklable_key_stays_local(self, tier):
        _server, connect = tier
        tracer = Tracer()
        store = TieredMemoStore(connect(tracer=tracer), tracer=tracer)
        key = ("d1", threading.Lock())  # pickling this raises
        assert store.get(key) is None
        store.put(key, entry(1))
        assert store.get(key) is not None  # local round trip still works
        assert tracer.metrics()["cluster.memo.remote_hits"] == 0
