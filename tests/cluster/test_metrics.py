"""Cluster-wide observability, end to end (the ISSUE acceptance bar).

A real 4-worker cluster serves real traffic; then:

* ``/metrics`` counters must equal the **exact** sum of the per-worker
  ``__metrics__`` values (plus the front's own), and merged histogram
  buckets must equal the bucket-wise sums — no resampling, no loss;
* every worker op span must carry the ``trace_id`` the front minted,
  parenting under the front's op span — one request, one tree, across
  processes;
* ``/healthz`` must expose per-worker liveness-ping age and respawn
  counts.
"""

import json
import shutil
import threading
import urllib.request

import pytest

from repro.api import Tracer
from repro.apps.counter import SOURCE as COUNTER
from repro.cluster import ClusterRouter, ClusterSupervisor
from repro.obs.histo import Histogram
from repro.obs.metrics import (
    CONTENT_TYPE,
    histograms_from_families,
    parse_prometheus,
)
from repro.obs.sinks import format_span_tree, spans_from_dicts
from repro.serve.app import make_server

WORKERS = 4


@pytest.fixture(scope="module")
def cluster():
    supervisor = ClusterSupervisor(
        source=COUNTER, workers=WORKERS, tracer=Tracer(),
        ping_interval=0.2,
    ).start()
    router = ClusterRouter(supervisor)
    # Enough traffic to touch every worker: sessions spread over the
    # ring, each one created, tapped and rendered.
    for _ in range(12):
        created = router.dispatch({"op": "create"})
        assert created["ok"], created
        token = created["token"]
        assert router.dispatch(
            {"op": "tap", "token": token, "text": "count: 0"}
        )["ok"]
        assert router.dispatch({"op": "render", "token": token})["ok"]
    try:
        yield supervisor, router
    finally:
        root = supervisor.journal_root
        supervisor.stop()
        shutil.rmtree(root, ignore_errors=True)


class TestMetricsAggregation:
    def test_counters_are_exact_per_worker_sums(self, cluster):
        supervisor, router = cluster
        payloads = supervisor.worker_metrics()
        assert len(payloads) == WORKERS
        families = parse_prometheus(router.metrics_text())
        front_counters, _gauges, _histograms = (
            supervisor.observability_snapshot()
        )
        for name in ("sessions_created", "events_queued",
                     "boxes_rendered"):
            expected = front_counters.get(name, 0) + sum(
                payload["counters"].get(name, 0)
                for payload in payloads.values()
            )
            scraped = families["repro_{}_total".format(name)]
            assert scraped == [({}, float(expected))], name
        # The front's own routing counter rides alongside.
        routed = families["repro_cluster_requests_routed_total"][0][1]
        assert routed == front_counters["cluster.requests_routed"]
        assert routed >= 36   # 12 sessions x create/tap/render

    def test_merged_histogram_buckets_are_bucket_sums(self, cluster):
        supervisor, router = cluster
        payloads = supervisor.worker_metrics()
        expected = Histogram()
        for payload in payloads.values():
            data = payload["histograms"].get("op.render")
            if data:
                expected.merge(Histogram.from_dict(data))
        assert expected.count >= 12
        families = parse_prometheus(router.metrics_text())
        rebuilt = histograms_from_families(families)[
            "repro_op_render_latency_seconds"
        ]
        assert rebuilt.counts == expected.counts
        assert rebuilt.count == expected.count
        # The front-side distribution is a separate family — client
        # latency and worker service time never merge into one.
        assert "repro_front_op_render_latency_seconds" in \
            histograms_from_families(families)

    def test_gauges_are_labeled_series_never_summed(self, cluster):
        supervisor, router = cluster
        families = parse_prometheus(router.metrics_text())
        up = {
            labels["worker"]: value
            for labels, value in families["repro_cluster_worker_up"]
        }
        assert up == {str(slot): 1.0 for slot in range(WORKERS)}
        breakers = families["repro_sessions_open_breakers"]
        assert len(breakers) == WORKERS
        assert all(labels.get("worker") for labels, _value in breakers)


class TestTracePropagation:
    def test_worker_spans_carry_the_fronts_trace_id(self, cluster):
        _supervisor, router = cluster
        created = router.dispatch({"op": "create"})
        token, trace_id = created["token"], created["trace_id"]
        rendered = router.dispatch({"op": "render", "token": token})
        render_trace = rendered["trace_id"]
        assert render_trace != trace_id   # one id per request

        reply = router.dispatch(
            {"op": "stats", "trace_id": render_trace}
        )
        spans = reply["trace"]
        assert spans, reply
        front = [s for s in spans
                 if str(s["span_id"]).startswith("f")]
        worker = [s for s in spans
                  if str(s["span_id"]).startswith("w")]
        assert front and worker
        # Every worker op span in the tree carries the front's id.
        rpc_spans = [s for s in worker if s["name"].startswith("rpc.")]
        assert rpc_spans
        for span in rpc_spans:
            assert span["attrs"]["trace_id"] == render_trace
        # ...and parents under the front's op span: one stitched tree.
        front_op = next(
            s for s in front
            if s["name"] == "op.render"
            and s["attrs"].get("trace_id") == render_trace
        )
        rpc = next(s for s in rpc_spans if s["name"] == "rpc.render")
        assert rpc["parent_id"] == front_op["span_id"]
        # The serialized spans rebuild into a renderable tree.
        tree = format_span_tree(spans_from_dicts(spans))
        assert "op.render" in tree
        assert "rpc.render" in tree

    def test_stats_without_trace_id_has_no_trace(self, cluster):
        _supervisor, router = cluster
        assert "trace" not in router.dispatch({"op": "stats"})


class TestOverHttp:
    @pytest.fixture()
    def http_port(self, cluster):
        _supervisor, router = cluster
        server = make_server(router)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        try:
            yield server.server_address[1]
        finally:
            server.shutdown()
            server.server_close()

    def test_get_metrics_scrapes_and_parses(self, cluster, http_port):
        with urllib.request.urlopen(
            "http://127.0.0.1:{}/metrics".format(http_port)
        ) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == CONTENT_TYPE
            text = response.read().decode("utf-8")
        families = parse_prometheus(text)
        assert "repro_cluster_requests_routed_total" in families
        assert histograms_from_families(families)

    def test_healthz_reports_ping_age_and_respawns(self, cluster,
                                                   http_port):
        with urllib.request.urlopen(
            "http://127.0.0.1:{}/healthz".format(http_port)
        ) as response:
            payload = json.loads(response.read())
        assert payload["ok"] is True
        assert len(payload["workers"]) == WORKERS
        for worker in payload["workers"]:
            assert worker["restarts"] == 0
            age = worker["last_ping_age_seconds"]
            # The monitor pings every 0.2s; a healthz round trip also
            # refreshes it — the age must exist and be recent.
            assert age is not None and 0.0 <= age < 5.0
