"""Consistent hashing: determinism, balance, minimal movement."""

import pytest

from repro.cluster import HashRing
from repro.core.errors import ReproError

TOKENS = ["s-{:04x}".format(n) for n in range(2000)]


class TestLookup:
    def test_deterministic_and_in_slots(self):
        ring = HashRing(range(4))
        for token in TOKENS[:100]:
            slot = ring.lookup(token)
            assert slot in ring.slots
            assert ring.lookup(token) == slot  # stable across calls

    def test_stable_across_ring_instances(self):
        first = HashRing(range(4))
        second = HashRing(range(4))
        assert [first.lookup(t) for t in TOKENS[:200]] == [
            second.lookup(t) for t in TOKENS[:200]
        ]

    def test_single_slot_takes_everything(self):
        ring = HashRing(["only"])
        assert all(ring.lookup(t) == "only" for t in TOKENS[:50])

    def test_empty_ring_rejected(self):
        with pytest.raises(ReproError):
            HashRing([])


class TestBalance:
    def test_every_slot_owns_a_fair_share(self):
        ring = HashRing(range(4))
        spread = ring.spread(TOKENS)
        assert set(spread) == {0, 1, 2, 3}
        fair = len(TOKENS) / 4
        for slot, count in spread.items():
            # 64 virtual points keep the worst slot within ~2x of fair.
            assert count > fair / 2, spread
            assert count < fair * 2, spread


class TestMovement:
    def test_removal_moves_only_the_removed_slots_tokens(self):
        ring = HashRing(range(4))
        before = {token: ring.lookup(token) for token in TOKENS}
        shrunk = ring.without(2)
        moved = 0
        for token, slot in before.items():
            after = shrunk.lookup(token)
            if slot == 2:
                moved += 1
                assert after != 2
            else:
                # Survivors' tokens must not shuffle.
                assert after == slot
        assert moved == sum(1 for s in before.values() if s == 2)

    def test_without_unknown_slot_rejected(self):
        with pytest.raises(ReproError):
            HashRing(range(2)).without(9)

    def test_exclude_matches_permanent_removal(self):
        # The exclude walk previews exactly where a retire would send
        # each token, so rebalance can be computed on the old ring.
        ring = HashRing(range(4))
        shrunk = ring.without(1)
        for token in TOKENS[:500]:
            assert ring.lookup(token, exclude=(1,)) == shrunk.lookup(token)

    def test_all_excluded_rejected(self):
        ring = HashRing(range(2))
        with pytest.raises(ReproError):
            ring.lookup("s-1", exclude=(0, 1))
