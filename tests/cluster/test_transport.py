"""The length-prefixed frame transport under the cluster."""

import socket
import threading
import time

import pytest

from repro.cluster import FrameClient, FrameServer, TransportError
from repro.cluster.transport import (
    ClientPool,
    decode_json,
    encode_json,
    recv_frame,
    send_frame,
)


def echo(payload):
    return payload


@pytest.fixture
def server():
    server = FrameServer(echo).start()
    try:
        yield server
    finally:
        server.stop()


class TestFrames:
    def test_roundtrip_over_a_socket_pair(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, b"hello")
            assert recv_frame(right) == b"hello"
            send_frame(right, b"")
            assert recv_frame(left) == b""
        finally:
            left.close()
            right.close()

    def test_clean_eof_is_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_torn_frame_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00\x00\x08abc")  # promises 8, sends 3
            left.close()
            with pytest.raises(TransportError):
                recv_frame(right)
        finally:
            right.close()

    def test_json_codec_roundtrip(self):
        frame = encode_json({"op": "render", "n": 3})
        assert decode_json(frame) == {"op": "render", "n": 3}


class TestClientServer:
    def test_request_reply(self, server):
        client = FrameClient(server.address)
        try:
            assert client.request(b"ping") == b"ping"
        finally:
            client.close()

    def test_large_frame(self, server):
        client = FrameClient(server.address)
        try:
            blob = b"x" * (4 * 1024 * 1024)
            assert client.request(blob) == blob
        finally:
            client.close()

    def test_request_after_server_stop_raises(self):
        server = FrameServer(echo).start()
        client = FrameClient(server.address)
        try:
            assert client.request(b"up") == b"up"
            server.stop()
            with pytest.raises(TransportError):
                client.request(b"down")
        finally:
            client.close()

    def test_client_reconnects_between_requests(self, server):
        client = FrameClient(server.address)
        try:
            assert client.request(b"one") == b"one"
            client._sock.close()  # sever the wire behind the client
            # The failed send is detected and the request raises; the
            # next call reconnects transparently.
            try:
                client.request(b"two")
            except TransportError:
                pass
            assert client.request(b"three") == b"three"
        finally:
            client.close()

    def test_stop_drains_in_flight_requests(self):
        release = threading.Event()

        def slow(payload):
            release.wait(5)
            return payload

        server = FrameServer(slow).start()
        client = FrameClient(server.address)
        replies = []
        thread = threading.Thread(
            target=lambda: replies.append(client.request(b"slow"))
        )
        thread.start()
        time.sleep(0.1)  # let the request reach the handler
        release.set()
        assert server.stop(drain_timeout=5)
        thread.join(timeout=5)
        client.close()
        assert replies == [b"slow"]


class TestClientPool:
    def test_concurrent_requests_share_the_pool(self, server):
        pool = ClientPool(server.address, size=3)
        results = []

        def worker(n):
            payload = "req-{}".format(n).encode()
            results.append(pool.request(payload) == payload)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(12)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        pool.close()
        assert results == [True] * 12

    def test_request_json(self, server):
        pool = ClientPool(server.address, size=1)
        try:
            assert pool.request_json({"a": 1}) == {"a": 1}
        finally:
            pool.close()

    def test_retarget_moves_to_a_new_server(self, server):
        replacement = FrameServer(lambda p: b"v2:" + p).start()
        pool = ClientPool(server.address, size=2)
        try:
            assert pool.request(b"x") == b"x"
            pool.retarget(replacement.address)
            assert pool.request(b"x") == b"v2:x"
        finally:
            pool.close()
            replacement.stop()
