"""The pluggable evaluator API: resolution, threading, and lifecycles."""

import warnings

import pytest

from repro.apps.counter import SOURCE as COUNTER
from repro.core.errors import ReproError
from repro.eval.backends import (
    BACKENDS,
    CompiledBackend,
    EvalBackend,
    TreeBackend,
    resolve_backend,
)
from repro.render.html_backend import render_html
from repro.surface.compile import compile_source
from repro.system.transitions import System


class TestResolveBackend:
    def test_none_is_the_tree_default(self):
        assert resolve_backend(None) is BACKENDS["tree"]

    def test_names_resolve_to_the_registry_singletons(self):
        assert isinstance(resolve_backend("tree"), TreeBackend)
        assert isinstance(resolve_backend("compiled"), CompiledBackend)

    def test_unknown_name_is_a_typed_error(self):
        with pytest.raises(ReproError) as caught:
            resolve_backend("jit")
        assert "unknown eval backend" in str(caught.value)
        assert "compiled" in str(caught.value)
        assert "tree" in str(caught.value)

    def test_instances_pass_through(self):
        backend = CompiledBackend()
        assert resolve_backend(backend) is backend

    def test_duck_typed_backends_pass_through(self):
        class Custom:
            def compile(self, code, **kwargs):
                raise NotImplementedError

        custom = Custom()
        assert resolve_backend(custom) is custom

    def test_non_backends_are_rejected(self):
        with pytest.raises(ReproError):
            resolve_backend(42)


class TestSystemIntegration:
    def test_default_backend_is_tree(self):
        code = compile_source(COUNTER).code
        system = System(code)
        assert system.backend_name == "tree"

    def test_compiled_backend_builds_a_compiled_evaluator(self):
        from repro.compile import Compiled

        code = compile_source(COUNTER).code
        system = System(code, backend="compiled")
        assert system.backend_name == "compiled"
        assert isinstance(system._evaluator, Compiled)

    def test_faithful_rejects_non_tree_backends(self):
        code = compile_source(COUNTER).code
        with pytest.raises(ReproError) as caught:
            System(code, faithful=True, backend="compiled")
        assert "faithful" in str(caught.value)

    def test_faithful_still_works_on_the_tree_backend(self):
        code = compile_source(COUNTER).code
        system = System(code, faithful=True, backend="tree")
        system.run_to_stable()
        assert "count: 0" in render_html(system.display)

    def test_update_retires_the_outgoing_compiled_units(self):
        code = compile_source(COUNTER).code
        system = System(code, backend="compiled")
        system.run_to_stable()
        outgoing = system._evaluator
        assert outgoing._dyn_units  # precompiled page units
        system.update(compile_source(
            COUNTER.replace('"reset"', '"zero"')
        ).code)
        assert system._evaluator is not outgoing
        # The invalidate hook released the outgoing version's caches.
        assert not outgoing._units
        assert not outgoing._dyn_units

    def test_update_keeps_the_backend(self):
        code = compile_source(COUNTER).code
        system = System(code, backend="compiled")
        system.run_to_stable()
        system.update(compile_source(
            COUNTER.replace('"reset"', '"zero"')
        ).code)
        system.run_to_stable()
        from repro.compile import Compiled

        assert isinstance(system._evaluator, Compiled)
        assert "zero" in render_html(system.display)


class TestApiThreading:
    def test_live_session_backend_is_keyword_only(self):
        from repro.api import LiveSession

        session = LiveSession(COUNTER, backend="compiled")
        assert session.runtime.system.backend_name == "compiled"
        with pytest.raises(TypeError):
            LiveSession(COUNTER, None, backend="compiled")

    def test_runtime_accepts_backend(self):
        from repro.api import Runtime

        code = compile_source(COUNTER).code
        runtime = Runtime(code, backend="compiled").start()
        assert runtime.system.backend_name == "compiled"
        assert "count: 0" in render_html(runtime.display)

    def test_session_host_backend_reaches_every_session(self):
        from repro.api import SessionHost

        host = SessionHost(
            pool_size=2, default_source=COUNTER, backend="compiled"
        )
        token = host.create()
        session = host._entries[token].session
        assert session.runtime.system.backend_name == "compiled"

    def test_session_kwargs_backend_wins_over_the_convenience_kwarg(self):
        from repro.api import SessionHost

        host = SessionHost(
            pool_size=2, default_source=COUNTER, backend="compiled",
            session_kwargs={"backend": "tree"},
        )
        token = host.create()
        session = host._entries[token].session
        assert session.runtime.system.backend_name == "tree"


class TestEvalFacade:
    def test_backend_names_export_eagerly(self):
        import repro.eval as eval_pkg

        assert eval_pkg.resolve_backend is resolve_backend
        assert eval_pkg.EvalBackend is EvalBackend
        assert eval_pkg.BACKENDS is BACKENDS

    def test_make_evaluator_warns_but_works(self):
        import repro.eval as eval_pkg

        code = compile_source(COUNTER).code
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            make_evaluator = eval_pkg.make_evaluator
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        evaluator = make_evaluator(code)
        assert evaluator is not None

    def test_unknown_attribute_still_raises(self):
        import repro.eval as eval_pkg

        with pytest.raises(AttributeError):
            eval_pkg.no_such_machine


class TestCli:
    def test_run_backend_flag(self, tmp_path):
        import io

        from repro.cli import main

        app = tmp_path / "counter.rp"
        app.write_text(COUNTER)
        outputs = {}
        for backend in ("tree", "compiled"):
            out = io.StringIO()
            assert main(
                [
                    "run", str(app), "--backend", backend,
                    "--tap", "count: 0",
                ],
                out=out,
            ) == 0
            outputs[backend] = out.getvalue()
        assert "count: 1" in outputs["compiled"]
        assert outputs["tree"] == outputs["compiled"]

    def test_unknown_backend_is_a_usage_error(self, tmp_path):
        import io

        from repro.cli import main

        app = tmp_path / "counter.rp"
        app.write_text(COUNTER)
        with pytest.raises(SystemExit):
            main(["run", str(app), "--backend", "jit"], out=io.StringIO())
