"""Differential testing: the compiled backend against the tree oracle.

``repro.compile`` is only correct if it is *unobservable*: for any
well-typed program and any interaction, the compiled machine must
produce byte-identical HTML, identical store contents, identical faults
and identical provenance to the tree-walking machine.  These properties
drive random live programs and edit sequences (the same generators the
metatheory suite uses) plus the real example apps through both backends
and compare everything a user — or a journal — could observe.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.counter import SOURCE as COUNTER
from repro.apps.mortgage import BASE_SOURCE, apply_i2, host_impls
from repro.core.errors import EvalError, FuelExhausted
from repro.live.session import LiveSession
from repro.metatheory.generators import edited_codes, live_programs
from repro.render.html_backend import render_html
from repro.resilience import Budget
from repro.stdlib.web import make_services
from repro.system.runtime import Runtime
from repro.system.transitions import System

_SETTINGS = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def editing_sessions(draw, max_edits=3):
    code = draw(live_programs())
    current = code
    edits = []
    for _ in range(draw(st.integers(1, max_edits))):
        current = draw(edited_codes(current))
        edits.append(current)
    return code, edits


def pair(code, **kwargs):
    tree = System(code, backend="tree", **kwargs)
    compiled = System(code, backend="compiled", **kwargs)
    tree.run_to_stable()
    compiled.run_to_stable()
    return tree, compiled


def assert_same_observables(tree, compiled):
    assert render_html(tree.display) == render_html(compiled.display)
    assert dict(tree.state.store.items()) == dict(
        compiled.state.store.items()
    )
    assert tree.state.stack.entries() == compiled.state.stack.entries()


class TestRenderParity:
    @_SETTINGS
    @given(session=editing_sessions())
    def test_byte_identical_html_through_edit_sequences(self, session):
        code, edits = session
        tree, compiled = pair(code)
        assert_same_observables(tree, compiled)
        for new_code in edits:
            tree.update(new_code)
            compiled.update(new_code)
            tree.run_to_stable()
            compiled.run_to_stable()
            assert_same_observables(tree, compiled)

    @_SETTINGS
    @given(session=editing_sessions())
    def test_compiled_with_memo_matches_plain_tree(self, session):
        # Memoization and compilation compose: the compiled machine's
        # memo interception must stay unobservable too.
        code, edits = session
        tree = System(code, backend="tree", memo_render=False)
        compiled = System(code, backend="compiled", memo_render=True)
        tree.run_to_stable()
        compiled.run_to_stable()
        assert_same_observables(tree, compiled)
        for new_code in edits:
            tree.update(new_code)
            compiled.update(new_code)
            tree.run_to_stable()
            compiled.run_to_stable()
            assert_same_observables(tree, compiled)


def session_pair(source, **kwargs):
    tree = LiveSession(source, backend="tree", **kwargs)
    compiled = LiveSession(source, backend="compiled", **kwargs)
    return tree, compiled


def tap_everything(session, rounds=3):
    from repro.core.names import ATTR_ONTAP

    for _ in range(rounds):
        tappable = session.runtime.find_boxes(
            lambda box: box.get_attr(ATTR_ONTAP) is not None
        )
        if not tappable:
            break
        session.runtime.tap(tappable[0][0])


class TestInteractionParity:
    def test_counter_taps_and_edit(self):
        tree, compiled = session_pair(COUNTER)
        for session in (tree, compiled):
            tap_everything(session, rounds=4)
        assert render_html(tree.display) == render_html(compiled.display)
        edited = COUNTER.replace('"count: "', '"total: "')
        assert tree.edit_source(edited).applied
        assert compiled.edit_source(edited).applied
        assert render_html(tree.display) == render_html(compiled.display)

    def test_mortgage_listing_flow(self):
        def make(backend):
            return LiveSession(
                BASE_SOURCE, backend=backend,
                host_impls=host_impls(),
                services=make_services(latency=0.05),
            )

        tree, compiled = make("tree"), make("compiled")
        for session in (tree, compiled):
            tap_everything(session, rounds=1)  # push the detail page
        assert render_html(tree.display) == render_html(compiled.display)
        for session in (tree, compiled):
            assert session.edit_source(apply_i2(session.source)).applied
        assert render_html(tree.display) == render_html(compiled.display)
        for session in (tree, compiled):
            session.back()
        assert render_html(tree.display) == render_html(compiled.display)


class TestProvenanceParity:
    def test_identical_read_and_write_logs(self):
        from repro.surface.compile import compile_source

        code = compile_source(COUNTER).code
        tree = Runtime(code, backend="tree")
        compiled = Runtime(code, backend="compiled")
        for runtime in (tree, compiled):
            runtime.system.capture_provenance = True
            runtime.start()
            runtime.tap(runtime.require_text("count: 0"))
            runtime.tap(runtime.require_text("count: 1"))
            runtime.tap(runtime.require_text("reset"))
        # Store write *versions* are a process-global counter, so two
        # systems in one process never see the same absolute numbers;
        # everything else — rules, read names *and order*, written
        # names — must match exactly.
        def normalized(log):
            return [
                {
                    "rule": entry["rule"],
                    "detail": entry["detail"],
                    "reads": entry["reads"],
                    "writes": sorted(entry["writes"]),
                }
                for entry in log
            ]

        assert normalized(tree.system.provenance_log) == normalized(
            compiled.system.provenance_log
        )
        assert len(tree.system.provenance_log) >= 3


FAULTY = '''\
global denom : number = 0

page start()
  render
    post 100 / denom
'''


class TestFaultParity:
    def test_identical_eval_fault(self):
        tree, compiled = session_pair(FAULTY, fault_policy="record")
        faults = [
            session.runtime.faults for session in (tree, compiled)
        ]
        assert faults[0] and faults[1]
        assert str(faults[0][0].error) == str(faults[1][0].error)
        assert str(faults[0][0].error) == "div: division by zero"
        assert faults[0][0].during == faults[1][0].during
        # Both backends degrade to the same fault screen.
        assert render_html(tree.display) == render_html(compiled.display)

    @staticmethod
    def looping_code():
        """A tail-recursive burner: ``burn(n) = burn(n - 1)`` forever."""
        from repro.core import ast
        from repro.core.defs import Code, FunDef, PageDef
        from repro.core.effects import PURE, RENDER, STATE
        from repro.core.types import FunType, NUMBER, UNIT

        burn = FunDef(
            "burn",
            FunType(NUMBER, NUMBER, PURE),
            ast.Lam(
                "n", NUMBER,
                ast.If(
                    ast.Prim("le", (ast.Var("n"), ast.Num(0.0))),
                    ast.Num(0.0),
                    ast.App(
                        ast.FunRef("burn"),
                        ast.Prim("sub", (ast.Var("n"), ast.Num(1.0))),
                    ),
                ),
                PURE,
            ),
        )
        page = PageDef(
            "start", UNIT,
            ast.Lam("a", UNIT, ast.UNIT_VALUE, STATE),
            ast.Lam(
                "a", UNIT,
                ast.Post(
                    ast.App(ast.FunRef("burn"), ast.Num(1_000_000.0))
                ),
                RENDER,
            ),
        )
        return Code([burn, page])

    def test_fuel_exhaustion_is_the_same_fault_type(self):
        # Step accounting differs between the machines (the compiled
        # machine charges per application, the tree machines per AST
        # step), so the exact count that trips and the message's machine
        # name may differ — but the *fault type* and the transition it
        # fired during must not: a million tail calls exhaust a
        # 10000-step budget on every backend.
        code = self.looping_code()
        faults = []
        for backend in ("tree", "compiled"):
            runtime = Runtime(
                code, backend=backend, fault_policy="record",
                budget=Budget(fuel=10_000),
            )
            runtime.start()
            faults.append(runtime.faults)
        assert faults[0] and faults[1]
        for recorded in faults:
            assert isinstance(recorded[0].error, FuelExhausted)
            assert isinstance(recorded[0].error, EvalError)
        assert faults[0][0].during == faults[1][0].during == "RENDER"
