"""Backend choice across the persistence layers.

Three properties: a saved image remembers the session's backend (so
evict → rehydrate keeps the configuration), an explicit backend on load
*migrates* the session — byte-identically, because the backends are
observationally equal — and journal recovery works across a backend
switch with display generations still strictly increasing.
"""

from repro.api import Journal, SessionHost, Tracer
from repro.apps.counter import SOURCE as COUNTER
from repro.live.session import LiveSession
from repro.persist import load_image, save_image, save_image_text
from repro.render.html_backend import render_html
from repro.resilience import recover


def tapped_session(backend, taps=3):
    session = LiveSession(COUNTER, backend=backend)
    for n in range(taps):
        session.runtime.tap(
            session.runtime.require_text("count: {}".format(n))
        )
    return session


class TestImages:
    def test_tree_images_stay_byte_identical(self):
        # The default backend stays implicit: images from before the
        # field existed and tree-backend images are the same bytes.
        image = save_image(tapped_session("tree"))
        assert "backend" not in image

    def test_compiled_sessions_save_their_backend(self):
        image = save_image(tapped_session("compiled"))
        assert image["backend"] == "compiled"

    def test_load_restores_the_saved_backend(self):
        session = tapped_session("compiled")
        loaded = load_image(save_image_text(session))
        assert loaded.runtime.system.backend_name == "compiled"
        assert render_html(loaded.display) == render_html(session.display)

    def test_save_on_one_backend_load_on_the_other(self):
        # Migration in both directions is invisible: same HTML bytes,
        # same store.
        for saved_on, loaded_on in (
            ("tree", "compiled"), ("compiled", "tree"),
        ):
            session = tapped_session(saved_on)
            loaded = load_image(
                save_image(session), backend=loaded_on
            )
            assert loaded.runtime.system.backend_name == loaded_on
            assert render_html(loaded.display) == render_html(
                session.display
            )
            assert dict(
                loaded.runtime.system.state.store.items()
            ) == dict(session.runtime.system.state.store.items())

    def test_explicit_backend_wins_over_the_image(self):
        loaded = load_image(
            save_image(tapped_session("compiled")), backend="tree"
        )
        assert loaded.runtime.system.backend_name == "tree"


def make_host(backend=None, journal=None):
    return SessionHost(
        pool_size=4,
        default_source=COUNTER,
        tracer=Tracer(),
        journal=journal,
        backend=backend,
    )


class TestJournalRecovery:
    def test_recover_across_a_backend_switch(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        host = make_host(
            backend="tree", journal=Journal(journal_dir)
        )
        token = host.create()
        for _ in range(4):
            host.tap(token, path=[0])
        html, generation, _ = host.render(token)
        assert "count: 4" in html

        rebuilt = make_host(backend="compiled")
        report = recover(rebuilt, Journal(journal_dir))
        assert report.sessions == 1
        session = rebuilt._entries[token].session
        assert session.runtime.system.backend_name == "compiled"
        html_after, generation_after, _ = rebuilt.render(token)
        assert html_after == html
        assert generation_after > generation

    def test_eviction_rehydration_keeps_the_backend(self, tmp_path):
        host = SessionHost(
            pool_size=1, default_source=COUNTER, tracer=Tracer(),
            backend="compiled",
        )
        first = host.create()
        host.tap(first, path=[0])
        first_html, first_generation, _ = host.render(first)
        second = host.create()  # LRU-evicts ``first`` to an image
        assert second
        html, generation, _ = host.render(first)  # rehydrates
        session = host._entries[first].session
        assert session.runtime.system.backend_name == "compiled"
        assert "count: 1" in html
        assert html == first_html
        # Identical bytes keep the client's cached generation valid.
        assert generation >= first_generation

    def test_image_round_trips_through_alternating_backends(self):
        session = tapped_session("tree", taps=2)
        html = render_html(session.display)
        for backend in ("compiled", "tree", "compiled"):
            session = load_image(save_image(session), backend=backend)
            assert render_html(session.display) == html
            session.runtime.tap(session.runtime.require_text("reset"))
            session.runtime.tap(
                session.runtime.require_text("count: 0")
            )
            session.runtime.tap(session.runtime.require_text("reset"))
            html = render_html(session.display)
