"""Shared fixtures for the test-suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make `tests.helpers` importable as plain `helpers` regardless of how
# pytest resolves test-package roots.
sys.path.insert(0, str(Path(__file__).parent))

from helpers import counter_core_code  # noqa: E402


@pytest.fixture
def counter_code():
    """The counter app as core code (one global, one page, one handler)."""
    return counter_core_code()


@pytest.fixture
def counter_runtime():
    from repro.system.runtime import Runtime

    return Runtime(counter_core_code()).start()


@pytest.fixture
def mortgage_session():
    """A LiveSession on the paper's running example, on the start page."""
    from repro.apps.mortgage import BASE_SOURCE, host_impls
    from repro.live.session import LiveSession
    from repro.stdlib.web import make_services

    return LiveSession(
        BASE_SOURCE, host_impls=host_impls(), services=make_services()
    )


@pytest.fixture
def mortgage_detail_session(mortgage_session):
    """The same session, navigated to the first listing's detail page."""
    runtime = mortgage_session.runtime
    first = runtime.global_value("listings").items[0]
    label = "{}, {}".format(first.items[0].value, first.items[1].value)
    runtime.tap_text(label)
    return mortgage_session
