"""Expression syntax (Fig. 6): values, traversal, substitution."""

import pytest

from repro.core import ast
from repro.core.effects import PURE, STATE
from repro.core.errors import ReproError
from repro.core.types import NUMBER, STRING, UNIT


def lam(param, body, param_type=NUMBER, effect=PURE):
    return ast.Lam(param, param_type, body, effect)


class TestValues:
    def test_literals_are_values(self):
        assert ast.Num(3).is_value()
        assert ast.Str("x").is_value()
        assert ast.Var("x").is_value()
        assert ast.UNIT_VALUE.is_value()

    def test_num_normalizes_to_float(self):
        assert ast.Num(3).value == 3.0
        assert isinstance(ast.Num(3).value, float)

    def test_num_rejects_bool_and_str(self):
        with pytest.raises(ReproError):
            ast.Num(True)
        with pytest.raises(ReproError):
            ast.Num("3")

    def test_tuple_value_iff_components_values(self):
        assert ast.Tuple((ast.Num(1), ast.Str("a"))).is_value()
        assert not ast.Tuple((ast.GlobalRead("g"),)).is_value()

    def test_list_value_iff_items_values(self):
        assert ast.ListLit((ast.Num(1),), NUMBER).is_value()
        assert not ast.ListLit((ast.GlobalRead("g"),), NUMBER).is_value()

    def test_lambda_is_value_with_redex_body(self):
        body = ast.App(lam("x", ast.Var("x")), ast.Num(1))
        assert lam("y", body).is_value()

    def test_non_values(self):
        for expr in (
            ast.App(lam("x", ast.Var("x")), ast.Num(1)),
            ast.FunRef("f"),
            ast.GlobalRead("g"),
            ast.GlobalWrite("g", ast.Num(1)),
            ast.Pop(),
            ast.Boxed(ast.UNIT_VALUE),
            ast.Post(ast.Num(1)),
            ast.SetAttr("margin", ast.Num(1)),
            ast.Push("p", ast.UNIT_VALUE),
            ast.Proj(ast.Tuple((ast.Num(1),)), 1),
            ast.If(ast.Num(1), ast.Num(2), ast.Num(3)),
            ast.Prim("add", (ast.Num(1), ast.Num(2))),
        ):
            assert not expr.is_value(), expr


class TestStructuralEquality:
    def test_equal_structures(self):
        a = ast.Prim("add", (ast.Num(1), ast.Num(2)))
        b = ast.Prim("add", (ast.Num(1), ast.Num(2)))
        assert a == b

    def test_box_id_excluded_from_equality(self):
        """box_id is IDE metadata, erased as far as the calculus goes."""
        assert ast.Boxed(ast.Num(1), box_id=1) == ast.Boxed(
            ast.Num(1), box_id=2
        )

    def test_projection_index_validated(self):
        with pytest.raises(ReproError):
            ast.Proj(ast.Tuple(()), 0)


class TestTraversal:
    def test_children_cover_all_nodes(self):
        expr = ast.If(
            ast.Prim("lt", (ast.Num(1), ast.GlobalRead("g"))),
            ast.Post(ast.Str("yes")),
            ast.UNIT_VALUE,
        )
        names = [type(node).__name__ for node in ast.walk(expr)]
        assert names == ["If", "Prim", "Num", "GlobalRead", "Post", "Str",
                         "Tuple"]

    def test_rebuild_identity(self):
        expr = ast.App(lam("x", ast.Var("x")), ast.Num(1))
        rebuilt = ast.rebuild(expr, ast.children(expr))
        assert rebuilt == expr

    def test_rebuild_preserves_box_id(self):
        boxed = ast.Boxed(ast.Num(1), box_id=42)
        rebuilt = ast.rebuild(boxed, [ast.Num(2)])
        assert rebuilt.box_id == 42

    def test_size_counts_nodes(self):
        assert ast.size(ast.Num(1)) == 1
        assert ast.size(ast.Prim("add", (ast.Num(1), ast.Num(2)))) == 3

    def test_contains_lambda(self):
        assert ast.contains_lambda(lam("x", ast.Var("x")))
        assert ast.contains_lambda(
            ast.Tuple((ast.Num(1), lam("x", ast.Var("x"))))
        )
        assert not ast.contains_lambda(ast.Tuple((ast.Num(1),)))


class TestFreeVars:
    def test_var_is_free(self):
        assert ast.free_vars(ast.Var("x")) == {"x"}

    def test_lambda_binds(self):
        assert ast.free_vars(lam("x", ast.Var("x"))) == set()

    def test_shadowing(self):
        inner = lam("x", ast.Var("x"))
        outer = lam("y", ast.App(inner, ast.Var("x")))
        assert ast.free_vars(outer) == {"x"}

    def test_is_closed(self):
        assert ast.is_closed(lam("x", ast.Var("x")))
        assert not ast.is_closed(ast.Var("x"))


class TestSubstitution:
    def test_basic(self):
        assert ast.subst(ast.Var("x"), "x", ast.Num(5)) == ast.Num(5)

    def test_other_vars_untouched(self):
        assert ast.subst(ast.Var("y"), "x", ast.Num(5)) == ast.Var("y")

    def test_stops_at_shadowing_binder(self):
        expr = lam("x", ast.Var("x"))
        assert ast.subst(expr, "x", ast.Num(5)) == expr

    def test_descends_into_non_shadowing_binder(self):
        expr = lam("y", ast.Var("x"))
        result = ast.subst(expr, "x", ast.Num(5))
        assert result.body == ast.Num(5)

    def test_capture_avoidance(self):
        # (λy. x)[ (λz. y) / x ] must not capture the free y.
        victim = lam("z", ast.Var("y"), param_type=UNIT)
        expr = lam("y", ast.Var("x"))
        result = ast.subst(expr, "x", victim)
        assert result.param != "y"
        assert ast.free_vars(result) == {"y"}

    def test_rejects_non_value(self):
        with pytest.raises(ReproError):
            ast.subst(ast.Var("x"), "x", ast.GlobalRead("g"))

    def test_substitution_shares_unchanged_subtrees(self):
        subtree = ast.Prim("add", (ast.Num(1), ast.Num(2)))
        expr = ast.Tuple((subtree, ast.Var("x")))
        result = ast.subst(expr, "x", ast.Num(0))
        assert result.items[0] is subtree  # no gratuitous copying

    def test_fresh_names_never_collide_with_source(self):
        assert "%" in ast.fresh_name("x")
        assert ast.fresh_name("x") != ast.fresh_name("x")
