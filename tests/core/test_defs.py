"""Program definitions and the code component C (Fig. 7)."""

import pytest

from repro.core import ast
from repro.core.defs import Code, EMPTY_CODE, FunDef, GlobalDef, PageDef
from repro.core.effects import PURE, RENDER, STATE
from repro.core.errors import ReproError
from repro.core.types import NUMBER, UNIT, fun


def num_global(name="g", value=0):
    return GlobalDef(name, NUMBER, ast.Num(value))


def identity_fun(name="f"):
    lam = ast.Lam("x", NUMBER, ast.Var("x"), PURE)
    return FunDef(name, fun(NUMBER, NUMBER, PURE), lam)


def blank_page(name="start"):
    return PageDef(
        name,
        UNIT,
        ast.Lam("a", UNIT, ast.UNIT_VALUE, STATE),
        ast.Lam("a", UNIT, ast.UNIT_VALUE, RENDER),
    )


class TestDefinitions:
    def test_global_requires_value_init(self):
        with pytest.raises(ReproError):
            GlobalDef("g", NUMBER, ast.GlobalRead("other"))

    def test_fun_requires_function_type(self):
        with pytest.raises(ReproError):
            FunDef("f", NUMBER, ast.Num(1))

    def test_page_body_types(self):
        page = blank_page()
        assert page.init_type == fun(UNIT, UNIT, STATE)
        assert page.render_type == fun(UNIT, UNIT, RENDER)


class TestCode:
    def test_empty(self):
        assert len(EMPTY_CODE) == 0
        assert "g" not in EMPTY_CODE

    def test_duplicate_names_rejected(self):
        with pytest.raises(ReproError):
            Code([num_global("g"), num_global("g")])

    def test_cross_kind_duplicates_rejected(self):
        with pytest.raises(ReproError):
            Code([num_global("x"), identity_fun("x")])

    def test_typed_lookups(self):
        code = Code([num_global(), identity_fun(), blank_page()])
        assert code.global_("g").name == "g"
        assert code.function("f").name == "f"
        assert code.page("start").name == "start"
        # kind-mismatched lookups return None, not the wrong def
        assert code.global_("f") is None
        assert code.function("start") is None
        assert code.page("g") is None

    def test_defined_names_in_order(self):
        code = Code([num_global(), identity_fun(), blank_page()])
        assert code.defined_names() == ("g", "f", "start")

    def test_kind_groups(self):
        code = Code([num_global(), identity_fun(), blank_page()])
        assert [d.name for d in code.globals()] == ["g"]
        assert [d.name for d in code.functions()] == ["f"]
        assert [d.name for d in code.pages()] == ["start"]

    def test_with_def_replaces(self):
        code = Code([num_global("g", 0)])
        updated = code.with_def(num_global("g", 7))
        assert updated.global_("g").init == ast.Num(7)
        assert code.global_("g").init == ast.Num(0)  # original untouched

    def test_with_def_adds(self):
        code = Code([num_global()])
        updated = code.with_def(identity_fun())
        assert len(updated) == 2 and len(code) == 1

    def test_without(self):
        code = Code([num_global(), identity_fun()])
        assert "g" not in code.without("g")
        assert "f" in code.without("g")

    def test_code_equality(self):
        assert Code([num_global()]) == Code([num_global()])
        assert Code([num_global(0)]) != Code([num_global("g", 1)])
