"""The effect lattice (Fig. 6's µ) — ordering, joins, parsing."""

import pytest

from repro.core.effects import (
    ALL_EFFECTS,
    Effect,
    PURE,
    RENDER,
    STATE,
    allows_render,
    allows_state,
    join,
    join_all,
    parse_effect,
    subeffect,
)
from repro.core.errors import ReproError


class TestSubeffect:
    def test_pure_below_everything(self):
        for upper in ALL_EFFECTS:
            assert subeffect(PURE, upper)

    def test_reflexive(self):
        for effect in ALL_EFFECTS:
            assert subeffect(effect, effect)

    def test_state_and_render_incomparable(self):
        assert not subeffect(STATE, RENDER)
        assert not subeffect(RENDER, STATE)

    def test_nothing_above_is_below_pure(self):
        assert not subeffect(STATE, PURE)
        assert not subeffect(RENDER, PURE)


class TestJoin:
    def test_join_with_pure_is_identity(self):
        for effect in ALL_EFFECTS:
            assert join(PURE, effect) is effect
            assert join(effect, PURE) is effect

    def test_join_idempotent(self):
        for effect in ALL_EFFECTS:
            assert join(effect, effect) is effect

    def test_state_render_join_fails(self):
        """The missing join IS the model/view separation."""
        assert join(STATE, RENDER) is None
        assert join(RENDER, STATE) is None

    def test_join_all_empty_is_pure(self):
        assert join_all(()) is PURE

    def test_join_all_propagates_failure(self):
        assert join_all((PURE, STATE, RENDER)) is None

    def test_join_all_takes_upper(self):
        assert join_all((PURE, PURE, STATE)) is STATE


class TestParsingAndPredicates:
    def test_parse_all_letters(self):
        assert parse_effect("p") is PURE
        assert parse_effect("s") is STATE
        assert parse_effect("r") is RENDER

    def test_parse_unknown_raises(self):
        with pytest.raises(ReproError):
            parse_effect("x")

    def test_str_round_trips(self):
        for effect in ALL_EFFECTS:
            assert parse_effect(str(effect)) is effect

    def test_allows_state_only_for_state(self):
        assert allows_state(STATE)
        assert not allows_state(PURE)
        assert not allows_state(RENDER)

    def test_allows_render_only_for_render(self):
        assert allows_render(RENDER)
        assert not allows_render(PURE)
        assert not allows_render(STATE)
