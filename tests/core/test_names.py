"""Identifier validation and well-known names."""

import pytest

from repro.core import names
from repro.core.errors import ReproError


class TestValidation:
    @pytest.mark.parametrize(
        "good",
        ["x", "display listentry", "font size", "_hidden", "$loop_1", "a1"],
    )
    def test_accepts(self, good):
        assert names.is_valid_identifier(good)
        assert names.check_identifier(good) == good

    @pytest.mark.parametrize(
        "bad", ["", " lead", "trail ", "1abc", "a\nb", None, 42]
    )
    def test_rejects(self, bad):
        assert not names.is_valid_identifier(bad)
        with pytest.raises(ReproError):
            names.check_identifier(bad)

    def test_error_mentions_kind(self):
        with pytest.raises(ReproError) as caught:
            names.check_identifier("", kind="page name")
        assert "page name" in str(caught.value)


class TestWellKnown:
    def test_start_page(self):
        assert names.START_PAGE == "start"

    def test_attribute_constants_registered(self):
        from repro.boxes.attributes import ATTRIBUTE_ENV

        for constant in (
            names.ATTR_ONTAP,
            names.ATTR_ONEDIT,
            names.ATTR_MARGIN,
            names.ATTR_BACKGROUND,
            names.ATTR_FONT_SIZE,
            names.ATTR_EDITABLE,
        ):
            assert constant in ATTRIBUTE_ENV
