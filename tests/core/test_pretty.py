"""The pretty-printer reproduces Fig. 6/7-style notation."""

import pytest

from repro.core import ast
from repro.core.defs import Code, FunDef, GlobalDef, PageDef
from repro.core.effects import PURE, RENDER, STATE
from repro.core.errors import ReproError
from repro.core.pretty import pretty, pretty_code, pretty_def
from repro.core.types import NUMBER, UNIT, fun


class TestExpressions:
    def test_literals(self):
        assert pretty(ast.Num(3)) == "3"
        assert pretty(ast.Num(2.5)) == "2.5"
        assert pretty(ast.Str("hi")) == '"hi"'
        assert pretty(ast.Str('say "hi"')) == '"say \\"hi\\""'

    def test_unit(self):
        assert pretty(ast.UNIT_VALUE) == "()"

    def test_lambda_shows_effect_letter(self):
        lam = ast.Lam("x", NUMBER, ast.Var("x"), STATE)
        assert pretty(lam) == "λs(x : number). x"

    def test_pure_lambda_omits_letter(self):
        lam = ast.Lam("x", NUMBER, ast.Var("x"), PURE)
        assert pretty(lam) == "λ(x : number). x"

    def test_application_parenthesizes_lambda(self):
        lam = ast.Lam("x", NUMBER, ast.Var("x"), PURE)
        text = pretty(ast.App(lam, ast.Num(1)))
        assert text == "(λ(x : number). x) 1"

    def test_global_forms(self):
        assert pretty(ast.GlobalRead("g")) == "□g"
        assert pretty(ast.GlobalWrite("g", ast.Num(1))) == "□g := 1"

    def test_page_and_box_forms(self):
        assert pretty(ast.Push("p", ast.UNIT_VALUE)) == "push p ()"
        assert pretty(ast.Pop()) == "pop"
        assert pretty(ast.Boxed(ast.UNIT_VALUE)) == "boxed ()"
        assert pretty(ast.Post(ast.Str("x"))) == 'post "x"'
        assert (
            pretty(ast.SetAttr("margin", ast.Num(2))) == "box.margin := 2"
        )

    def test_projection_and_if(self):
        tup = ast.Tuple((ast.Num(1), ast.Num(2)))
        assert pretty(ast.Proj(tup, 2)) == "(1, 2).2"
        conditional = ast.If(ast.Num(1), ast.Num(2), ast.Num(3))
        assert pretty(conditional) == "if 1 then 2 else 3"

    def test_prim_call(self):
        assert pretty(ast.Prim("add", (ast.Num(1), ast.Num(2)))) == "add(1, 2)"

    def test_funref(self):
        assert pretty(ast.FunRef("f")) == "•f"


class TestDefinitions:
    def test_global_def(self):
        text = pretty_def(GlobalDef("g", NUMBER, ast.Num(0)))
        assert text == "global g : number = 0"

    def test_fun_def(self):
        lam = ast.Lam("x", NUMBER, ast.Var("x"), PURE)
        text = pretty_def(FunDef("f", fun(NUMBER, NUMBER, PURE), lam))
        assert text == "fun f : number -p> number is λ(x : number). x"

    def test_page_def(self):
        page = PageDef(
            "start",
            UNIT,
            ast.Lam("a", UNIT, ast.UNIT_VALUE, STATE),
            ast.Lam("a", UNIT, ast.UNIT_VALUE, RENDER),
        )
        text = pretty_def(page)
        assert text.startswith("page start(())")
        assert "init" in text and "render" in text

    def test_pretty_code_one_def_per_line(self):
        code = Code(
            [
                GlobalDef("a", NUMBER, ast.Num(1)),
                GlobalDef("b", NUMBER, ast.Num(2)),
            ]
        )
        assert pretty_code(code).split("\n") == [
            "global a : number = 1",
            "global b : number = 2",
        ]

    def test_pretty_code_rejects_non_code(self):
        with pytest.raises(ReproError):
            pretty_code([])
