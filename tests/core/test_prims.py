"""Primitive-operator signatures and the mini type-variable matcher."""

import pytest

from repro.core.effects import PURE
from repro.core.errors import TypeProblem
from repro.core.prims import (
    A,
    PRIM_SIGS,
    PrimSig,
    TVar,
    lookup_prim,
    match_signature,
)
from repro.core.types import (
    NUMBER,
    STRING,
    TupleType,
    list_of,
    tuple_of,
)


class TestTable:
    def test_every_entry_well_formed(self):
        for name, sig in PRIM_SIGS.items():
            assert sig.name == name
            assert sig.arity == len(sig.params)
            assert sig.effect is PURE  # all built-ins are pure

    def test_lookup(self):
        assert lookup_prim("add").result == NUMBER
        assert lookup_prim("no_such_op") is None

    def test_paper_operators_present(self):
        """The operators the paper's figures use must all exist."""
        for op in ("floor", "round", "mod", "concat", "str_length"):
            assert op in PRIM_SIGS


class TestMonomorphicMatching:
    def test_exact_match(self):
        assert match_signature(PRIM_SIGS["add"], [NUMBER, NUMBER]) == NUMBER
        assert match_signature(PRIM_SIGS["concat"], [STRING, STRING]) == STRING

    def test_arity_mismatch(self):
        with pytest.raises(TypeProblem) as caught:
            match_signature(PRIM_SIGS["add"], [NUMBER])
        assert caught.value.rule == "T-PRIM"

    def test_type_mismatch_names_argument(self):
        with pytest.raises(TypeProblem) as caught:
            match_signature(PRIM_SIGS["add"], [NUMBER, STRING])
        assert "argument 2" in str(caught.value)


class TestPolymorphicMatching:
    def test_list_length_any_element(self):
        sig = PRIM_SIGS["list_length"]
        assert match_signature(sig, [list_of(NUMBER)]) == NUMBER
        assert match_signature(sig, [list_of(tuple_of(STRING))]) == NUMBER

    def test_list_get_returns_element_type(self):
        sig = PRIM_SIGS["list_get"]
        element = tuple_of(STRING, NUMBER)
        assert match_signature(sig, [list_of(element), NUMBER]) == element

    def test_list_append_binds_consistently(self):
        sig = PRIM_SIGS["list_append"]
        assert match_signature(
            sig, [list_of(NUMBER), NUMBER]
        ) == list_of(NUMBER)

    def test_list_append_inconsistent_binding_rejected(self):
        with pytest.raises(TypeProblem):
            match_signature(
                PRIM_SIGS["list_append"], [list_of(NUMBER), STRING]
            )

    def test_eq_requires_same_types(self):
        assert match_signature(PRIM_SIGS["eq"], [STRING, STRING]) == NUMBER
        with pytest.raises(TypeProblem):
            match_signature(PRIM_SIGS["eq"], [STRING, NUMBER])

    def test_nested_tvar_through_tuple(self):
        sig = PrimSig("fst2", (tuple_of(A, A),), A)
        assert match_signature(sig, [tuple_of(NUMBER, NUMBER)]) == NUMBER
        with pytest.raises(TypeProblem):
            match_signature(sig, [tuple_of(NUMBER, STRING)])

    def test_unbound_tvar_in_result_rejected(self):
        sig = PrimSig("make", (NUMBER,), A)
        with pytest.raises(TypeProblem):
            match_signature(sig, [NUMBER])
