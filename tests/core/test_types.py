"""The type language τ (Fig. 6): structure, →-freeness, subtyping."""

import pytest

from repro.core.effects import PURE, RENDER, STATE
from repro.core.errors import ReproError
from repro.core.types import (
    FunType,
    ListType,
    NUMBER,
    STRING,
    TupleType,
    UNIT,
    fun,
    is_subtype,
    list_of,
    tuple_of,
)


class TestConstruction:
    def test_unit_is_empty_tuple(self):
        assert UNIT == TupleType(())
        assert UNIT.arity == 0

    def test_tuple_of_builds_in_order(self):
        pair = tuple_of(NUMBER, STRING)
        assert pair.elements == (NUMBER, STRING)

    def test_tuple_rejects_non_types(self):
        with pytest.raises(ReproError):
            TupleType((NUMBER, "not a type"))

    def test_structural_equality(self):
        assert tuple_of(NUMBER, STRING) == tuple_of(NUMBER, STRING)
        assert list_of(NUMBER) == list_of(NUMBER)
        assert fun(NUMBER, STRING, PURE) == fun(NUMBER, STRING, PURE)

    def test_effect_distinguishes_function_types(self):
        assert fun(UNIT, UNIT, STATE) != fun(UNIT, UNIT, RENDER)

    def test_types_are_hashable(self):
        assert len({NUMBER, STRING, UNIT, list_of(NUMBER)}) == 4


class TestFunctionFree:
    """The →-free side-condition of T-C-GLOBAL / T-C-PAGE."""

    def test_base_types_are_function_free(self):
        assert NUMBER.is_function_free()
        assert STRING.is_function_free()
        assert UNIT.is_function_free()

    def test_nested_function_detected(self):
        handler = fun(UNIT, UNIT, STATE)
        assert not handler.is_function_free()
        assert not tuple_of(NUMBER, handler).is_function_free()
        assert not list_of(handler).is_function_free()
        assert not tuple_of(tuple_of(handler)).is_function_free()

    def test_deep_function_free(self):
        deep = list_of(tuple_of(NUMBER, list_of(STRING)))
        assert deep.is_function_free()


class TestPrinting:
    def test_base(self):
        assert str(NUMBER) == "number"
        assert str(STRING) == "string"
        assert str(UNIT) == "()"

    def test_function_shows_effect(self):
        assert str(fun(NUMBER, UNIT, STATE)) == "number -s> ()"

    def test_function_param_parenthesized(self):
        nested = fun(fun(NUMBER, NUMBER, PURE), NUMBER, PURE)
        assert str(nested) == "(number -p> number) -p> number"

    def test_list_of_function_parenthesized(self):
        assert str(list_of(NUMBER)) == "list number"


class TestSubtyping:
    """T-SUB closed structurally."""

    def test_reflexive(self):
        for type_ in (NUMBER, STRING, UNIT, list_of(NUMBER)):
            assert is_subtype(type_, type_)

    def test_pure_arrow_below_any_effect(self):
        pure_fn = fun(NUMBER, NUMBER, PURE)
        assert is_subtype(pure_fn, fun(NUMBER, NUMBER, STATE))
        assert is_subtype(pure_fn, fun(NUMBER, NUMBER, RENDER))

    def test_effectful_arrow_not_below_pure(self):
        assert not is_subtype(
            fun(NUMBER, NUMBER, STATE), fun(NUMBER, NUMBER, PURE)
        )

    def test_state_arrow_not_below_render(self):
        assert not is_subtype(
            fun(NUMBER, NUMBER, STATE), fun(NUMBER, NUMBER, RENDER)
        )

    def test_contravariant_parameters(self):
        # (number -s> ()) -p> ()  <:  (number -p> ()) -p> ()
        takes_stateful = fun(fun(NUMBER, UNIT, STATE), UNIT, PURE)
        takes_pure = fun(fun(NUMBER, UNIT, PURE), UNIT, PURE)
        assert is_subtype(takes_stateful, takes_pure)
        assert not is_subtype(takes_pure, takes_stateful)

    def test_covariant_through_tuples_and_lists(self):
        inner = fun(UNIT, UNIT, PURE)
        outer = fun(UNIT, UNIT, STATE)
        assert is_subtype(tuple_of(inner), tuple_of(outer))
        assert is_subtype(list_of(inner), list_of(outer))

    def test_arity_mismatch(self):
        assert not is_subtype(tuple_of(NUMBER), tuple_of(NUMBER, NUMBER))

    def test_base_types_unrelated(self):
        assert not is_subtype(NUMBER, STRING)
        assert not is_subtype(STRING, NUMBER)
        assert not is_subtype(NUMBER, UNIT)
