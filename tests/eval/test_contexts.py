"""Evaluation-context decomposition (Fig. 6's E grammar)."""

import pytest

from repro.core import ast
from repro.core.effects import PURE, RENDER
from repro.core.errors import ReproError
from repro.core.types import NUMBER, UNIT
from repro.eval.contexts import context_depth, decompose, plug, redex_of


def lam(body):
    return ast.Lam("x", NUMBER, body, PURE)


class TestDecompose:
    def test_values_have_no_decomposition(self):
        assert decompose(ast.Num(1)) is None
        assert decompose(lam(ast.Var("x"))) is None

    def test_whole_expression_as_redex(self):
        expr = ast.App(lam(ast.Var("x")), ast.Num(1))
        path, redex = decompose(expr)
        assert path == [] and redex is expr

    def test_left_to_right_in_application(self):
        """E e first, then v E: the function position reduces first."""
        inner = ast.App(lam(ast.Var("x")), ast.Num(1))
        expr = ast.App(inner, ast.GlobalRead("g"))
        _path, redex = decompose(expr)
        assert redex is inner
        # Once the function is a value, the argument becomes the redex.
        expr2 = ast.App(lam(ast.Var("x")), ast.GlobalRead("g"))
        _path, redex2 = decompose(expr2)
        assert redex2 == ast.GlobalRead("g")

    def test_tuple_left_to_right(self):
        expr = ast.Tuple(
            (ast.Num(1), ast.GlobalRead("a"), ast.GlobalRead("b"))
        )
        _path, redex = decompose(expr)
        assert redex == ast.GlobalRead("a")

    def test_boxed_is_a_redex_not_a_context(self):
        """ER-BOXED reduces its body in a nested derivation."""
        body = ast.Post(ast.Num(1))
        expr = ast.Boxed(body)
        path, redex = decompose(expr)
        assert path == [] and redex is expr

    def test_if_descends_only_into_condition(self):
        expr = ast.If(
            ast.GlobalRead("c"), ast.GlobalRead("t"), ast.GlobalRead("e")
        )
        _path, redex = decompose(expr)
        assert redex == ast.GlobalRead("c")

    def test_branches_not_evaluated_early(self):
        expr = ast.If(ast.Num(1), ast.GlobalRead("t"), ast.GlobalRead("e"))
        _path, redex = decompose(expr)
        assert redex is expr  # the If itself fires, not a branch

    def test_lambda_bodies_not_positions(self):
        value = lam(ast.App(lam(ast.Var("x")), ast.Num(1)))
        assert decompose(value) is None

    def test_nested_depth(self):
        redex = ast.GlobalRead("g")
        expr = ast.Prim("add", (ast.Num(1), ast.Prim("add", (redex, ast.Num(2)))))
        assert context_depth(expr) == 2

    def test_context_depth_rejects_values(self):
        with pytest.raises(ReproError):
            context_depth(ast.Num(1))


class TestPlug:
    def test_round_trip(self):
        expr = ast.Prim(
            "add",
            (ast.Num(1), ast.Prim("mul", (ast.GlobalRead("g"), ast.Num(2)))),
        )
        path, redex = decompose(expr)
        assert plug(path, redex) == expr

    def test_plug_replaces_hole(self):
        expr = ast.Prim("add", (ast.GlobalRead("g"), ast.Num(2)))
        path, _redex = decompose(expr)
        stepped = plug(path, ast.Num(40))
        assert stepped == ast.Prim("add", (ast.Num(40), ast.Num(2)))

    def test_redex_of_values(self):
        assert redex_of(ast.Num(1)) is None
