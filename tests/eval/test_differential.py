"""Differential testing: the faithful small-step machine and the CEK
machine must agree on values, stores, queues and box trees.

Hand-written scenarios cover each effect mode; the hypothesis section
fuzzes with random well-typed programs from the metatheory generators.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from helpers import counter_core_code, page_code, seq, seq_value
from repro.core import ast
from repro.core.defs import GlobalDef
from repro.core.effects import RENDER, STATE
from repro.core.types import NUMBER, STRING
from repro.eval.machine import BigStep, SmallStep
from repro.metatheory.generators import typed_expressions
from repro.system.events import EventQueue
from repro.system.state import Store

CODE = page_code(
    ast.UNIT_VALUE,
    globals_=[
        GlobalDef("n", NUMBER, ast.Num(0)),
        GlobalDef("s", STRING, ast.Str("go")),
    ],
)


def both_state(code, expr):
    results = []
    for cls in (SmallStep, BigStep):
        store, queue = Store(), EventQueue()
        value = cls(code).run_state(store, queue, expr)
        results.append((value, store.items(), queue.events()))
    return results


def both_render(code, expr):
    results = []
    for cls in (SmallStep, BigStep):
        store = Store()
        root = cls(code).run_render(store, expr)
        results.append(root)
    return results


class TestHandWritten:
    def test_state_scenario(self):
        expr = seq_value(
            STATE,
            ast.GlobalWrite("n", ast.Num(5)),
            ast.GlobalWrite(
                "n", ast.Prim("mul", (ast.GlobalRead("n"), ast.Num(3)))
            ),
            ast.Push("start", ast.UNIT_VALUE),
            ast.GlobalRead("n"),
        )
        small, big = both_state(CODE, expr)
        assert small == big
        assert small[0] == ast.Num(15)

    def test_render_scenario(self):
        expr = seq(
            RENDER,
            ast.SetAttr("margin", ast.Num(1)),
            ast.Boxed(
                seq(
                    RENDER,
                    ast.Post(ast.GlobalRead("s")),
                    ast.Boxed(ast.Post(ast.Num(1)), box_id=2),
                ),
                box_id=1,
            ),
            ast.Post(ast.Str("tail")),
        )
        small, big = both_render(CODE, expr)
        assert small == big
        assert small.count_boxes() == 3

    def test_box_metadata_agrees(self):
        expr = seq(
            RENDER,
            ast.Boxed(ast.UNIT_VALUE, box_id=4),
            ast.Boxed(ast.UNIT_VALUE, box_id=4),
        )
        small, big = both_render(CODE, expr)
        small_meta = [(b.box_id, b.occurrence) for b in small.children()]
        big_meta = [(b.box_id, b.occurrence) for b in big.children()]
        assert small_meta == big_meta == [(4, 0), (4, 1)]

    def test_whole_counter_app(self):
        """Run the full system scenario under both evaluators."""
        from repro.system.runtime import Runtime

        code = counter_core_code()
        displays = []
        for faithful in (False, True):
            runtime = Runtime(code, faithful=faithful).start()
            runtime.tap_text("count: 0")
            runtime.tap_text("count: 1")
            displays.append(runtime.display)
        assert displays[0] == displays[1]


class TestRandomized:
    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(case=typed_expressions(effect=STATE, depth=3))
    def test_state_expressions_agree(self, case):
        code, expr, _type = case
        small, big = both_state(code, expr)
        assert small == big

    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(case=typed_expressions(effect=RENDER, depth=3))
    def test_render_expressions_agree(self, case):
        code, expr, _type = case
        small, big = both_render(code, expr)
        assert small == big
