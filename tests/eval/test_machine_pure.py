"""Pure evaluation steps (EP-FUN, EP-APP, EP-TUPLE, EP-GLOBAL-1/2)."""

import pytest

from helpers import page_code, run_pure
from repro.core import ast
from repro.core.defs import Code, FunDef, GlobalDef
from repro.core.effects import PURE
from repro.core.errors import FuelExhausted, StuckExpression
from repro.core.types import NUMBER, UNIT, fun
from repro.eval.machine import BigStep, SmallStep
from repro.system.state import Store

GLOBALS = [GlobalDef("g", NUMBER, ast.Num(42))]
DOUBLE = FunDef(
    "double",
    fun(NUMBER, NUMBER, PURE),
    ast.Lam("x", NUMBER, ast.Prim("add", (ast.Var("x"), ast.Var("x"))), PURE),
)
CODE = page_code(ast.UNIT_VALUE, globals_=GLOBALS, extra_defs=[DOUBLE])


@pytest.fixture(params=["small", "big"], ids=["small-step", "cek"])
def faithful(request):
    return request.param == "small"


class TestPureRules:
    def test_ep_app(self, faithful):
        expr = ast.App(
            ast.Lam("x", NUMBER, ast.Var("x"), PURE), ast.Num(7)
        )
        assert run_pure(CODE, expr, faithful) == ast.Num(7)

    def test_ep_fun_unfolds_definition(self, faithful):
        expr = ast.App(ast.FunRef("double"), ast.Num(21))
        assert run_pure(CODE, expr, faithful) == ast.Num(42)

    def test_ep_tuple_projection(self, faithful):
        expr = ast.Proj(ast.Tuple((ast.Num(1), ast.Num(2), ast.Num(3))), 2)
        assert run_pure(CODE, expr, faithful) == ast.Num(2)

    def test_ep_global_1_reads_store(self, faithful):
        store = Store()
        store.assign("g", ast.Num(99))
        assert run_pure(
            CODE, ast.GlobalRead("g"), faithful, store=store
        ) == ast.Num(99)

    def test_ep_global_2_falls_back_to_initial_value(self, faithful):
        """g ∉ dom S: the declared initial value is read from the code."""
        assert run_pure(CODE, ast.GlobalRead("g"), faithful) == ast.Num(42)

    def test_ep_global_2_does_not_populate_store(self, faithful):
        store = Store()
        run_pure(CODE, ast.GlobalRead("g"), faithful, store=store)
        assert "g" not in store  # only ES-ASSIGN creates entries

    def test_if_true_false(self, faithful):
        t = ast.If(ast.Num(1), ast.Num(10), ast.Num(20))
        f = ast.If(ast.Num(0), ast.Num(10), ast.Num(20))
        assert run_pure(CODE, t, faithful) == ast.Num(10)
        assert run_pure(CODE, f, faithful) == ast.Num(20)

    def test_if_branches_lazy(self, faithful):
        """The untaken branch may be arbitrarily bad (it never runs)."""
        expr = ast.If(
            ast.Num(1), ast.Num(5), ast.Prim("div", (ast.Num(1), ast.Num(0)))
        )
        assert run_pure(CODE, expr, faithful) == ast.Num(5)

    def test_recursion_through_funref(self, faithful):
        body = ast.Lam(
            "n",
            NUMBER,
            ast.If(
                ast.Prim("le", (ast.Var("n"), ast.Num(0))),
                ast.Num(0),
                ast.Prim(
                    "add",
                    (
                        ast.Var("n"),
                        ast.App(
                            ast.FunRef("sum"),
                            ast.Prim("sub", (ast.Var("n"), ast.Num(1))),
                        ),
                    ),
                ),
            ),
            PURE,
        )
        code = page_code(
            ast.UNIT_VALUE,
            extra_defs=[FunDef("sum", fun(NUMBER, NUMBER, PURE), body)],
        )
        expr = ast.App(ast.FunRef("sum"), ast.Num(100))
        assert run_pure(code, expr, faithful) == ast.Num(5050)


class TestPureStuckness:
    def test_undefined_function(self, faithful):
        with pytest.raises(StuckExpression):
            run_pure(CODE, ast.FunRef("ghost"), faithful)

    def test_undefined_global(self, faithful):
        with pytest.raises(StuckExpression):
            run_pure(CODE, ast.GlobalRead("ghost"), faithful)

    def test_assignment_stuck_in_pure_mode(self, faithful):
        with pytest.raises(StuckExpression):
            run_pure(CODE, ast.GlobalWrite("g", ast.Num(1)), faithful)

    def test_post_stuck_in_pure_mode(self, faithful):
        with pytest.raises(StuckExpression):
            run_pure(CODE, ast.Post(ast.Num(1)), faithful)

    def test_application_of_non_function(self, faithful):
        with pytest.raises(StuckExpression):
            run_pure(CODE, ast.App(ast.Num(1), ast.Num(2)), faithful)


class TestFuel:
    def _omega(self):
        loop = FunDef(
            "loop",
            fun(UNIT, UNIT, PURE),
            ast.Lam(
                "u", UNIT, ast.App(ast.FunRef("loop"), ast.Var("u")), PURE
            ),
        )
        return page_code(ast.UNIT_VALUE, extra_defs=[loop])

    def test_small_step_fuel(self):
        code = self._omega()
        machine = SmallStep(code)
        with pytest.raises(FuelExhausted):
            machine.run_pure(
                Store(), ast.App(ast.FunRef("loop"), ast.UNIT_VALUE),
                fuel=1000,
            )

    def test_big_step_fuel(self):
        code = self._omega()
        machine = BigStep(code)
        with pytest.raises(FuelExhausted):
            machine.run_pure(
                Store(), ast.App(ast.FunRef("loop"), ast.UNIT_VALUE),
                fuel=1000,
            )

    def test_cek_tail_recursion_constant_python_stack(self):
        """Deep tail recursion must not hit Python's recursion limit."""
        import sys

        body = ast.Lam(
            "n",
            NUMBER,
            ast.If(
                ast.Prim("le", (ast.Var("n"), ast.Num(0))),
                ast.Num(0),
                ast.App(
                    ast.FunRef("down"),
                    ast.Prim("sub", (ast.Var("n"), ast.Num(1))),
                ),
            ),
            PURE,
        )
        code = page_code(
            ast.UNIT_VALUE,
            extra_defs=[FunDef("down", fun(NUMBER, NUMBER, PURE), body)],
        )
        depth = sys.getrecursionlimit() * 3
        expr = ast.App(ast.FunRef("down"), ast.Num(depth))
        machine = BigStep(code)
        assert machine.run_pure(Store(), expr) == ast.Num(0)
