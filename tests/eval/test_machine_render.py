"""Render-mode steps (ER-PURE, ER-POST, ER-ATTR, ER-BOXED)."""

import pytest

from helpers import page_code, run_render, seq, seq_value
from repro.core import ast
from repro.core.defs import GlobalDef
from repro.core.effects import RENDER, STATE
from repro.core.errors import StuckExpression
from repro.core.types import NUMBER, UNIT

CODE = page_code(
    ast.UNIT_VALUE, globals_=[GlobalDef("n", NUMBER, ast.Num(3))]
)


@pytest.fixture(params=[False, True], ids=["cek", "small-step"])
def faithful(request):
    return request.param


class TestPostAndAttr:
    def test_er_post_appends_to_current_box(self, faithful):
        root = run_render(CODE, ast.Post(ast.Str("hello")), faithful)
        assert root.leaves() == [ast.Str("hello")]

    def test_posts_keep_order(self, faithful):
        expr = seq(
            RENDER,
            ast.Post(ast.Num(1)),
            ast.Post(ast.Num(2)),
            ast.Post(ast.Num(3)),
        )
        root = run_render(CODE, expr, faithful)
        assert root.leaves() == [ast.Num(1), ast.Num(2), ast.Num(3)]

    def test_er_attr_on_implicit_root(self, faithful):
        """Render code can set attributes outside any boxed statement."""
        root = run_render(
            CODE, ast.SetAttr("margin", ast.Num(4)), faithful
        )
        assert root.get_attr("margin") == ast.Num(4)

    def test_later_attr_wins(self, faithful):
        expr = seq(
            RENDER,
            ast.SetAttr("margin", ast.Num(1)),
            ast.SetAttr("margin", ast.Num(2)),
        )
        root = run_render(CODE, expr, faithful)
        assert root.get_attr("margin") == ast.Num(2)


class TestBoxed:
    def test_er_boxed_nests(self, faithful):
        expr = ast.Boxed(ast.Post(ast.Str("inner")), box_id=9)
        root = run_render(CODE, expr, faithful)
        (child,) = root.children()
        assert child.leaves() == [ast.Str("inner")]
        assert child.box_id == 9

    def test_er_boxed_returns_body_value(self, faithful):
        """ER-BOXED is E[v]: the nested body's value escapes the box."""
        expr = ast.Post(ast.Boxed(ast.Num(7), box_id=1))
        root = run_render(CODE, expr, faithful)
        # The boxed produced an (empty) child box, and its value 7 was
        # then posted into the root.
        assert root.leaves() == [ast.Num(7)]
        assert len(root.children()) == 1

    def test_boxed_attrs_stay_in_their_box(self, faithful):
        expr = seq(
            RENDER,
            ast.Boxed(ast.SetAttr("margin", ast.Num(5)), box_id=1),
            ast.Post(ast.Str("outer")),
        )
        root = run_render(CODE, expr, faithful)
        assert root.get_attr("margin") is None
        assert root.children()[0].get_attr("margin") == ast.Num(5)

    def test_occurrence_numbering_in_execution_order(self, faithful):
        expr = seq(
            RENDER,
            ast.Boxed(ast.UNIT_VALUE, box_id=7),
            ast.Boxed(ast.UNIT_VALUE, box_id=7),
            ast.Boxed(ast.UNIT_VALUE, box_id=8),
        )
        root = run_render(CODE, expr, faithful)
        occurrences = [
            (child.box_id, child.occurrence) for child in root.children()
        ]
        assert occurrences == [(7, 0), (7, 1), (8, 0)]

    def test_deep_nesting(self, faithful):
        expr = ast.Boxed(
            ast.Boxed(ast.Boxed(ast.Post(ast.Str("deep")), box_id=3),
                      box_id=2),
            box_id=1,
        )
        root = run_render(CODE, expr, faithful)
        box = root
        for expected_id in (1, 2, 3):
            (box,) = box.children()
            assert box.box_id == expected_id
        assert box.leaves() == [ast.Str("deep")]

    def test_render_reads_globals(self, faithful):
        expr = ast.Post(ast.GlobalRead("n"))
        root = run_render(CODE, expr, faithful)
        assert root.leaves() == [ast.Num(3)]

    def test_handler_attr_holds_closure(self, faithful):
        handler = ast.Lam("u", UNIT, ast.GlobalWrite("n", ast.Num(0)), STATE)
        root = run_render(CODE, ast.SetAttr("ontap", handler), faithful)
        assert root.get_attr("ontap") == handler

    def test_display_is_frozen(self, faithful):
        root = run_render(CODE, ast.Post(ast.Num(1)), faithful)
        from repro.core.errors import ReproError

        with pytest.raises(ReproError):
            root.append_leaf(ast.Num(2))


class TestRenderConfinement:
    def test_assignment_stuck_in_render_mode(self, faithful):
        """The operational half of 'render code cannot write globals'."""
        with pytest.raises(StuckExpression):
            run_render(CODE, ast.GlobalWrite("n", ast.Num(1)), faithful)

    def test_push_pop_stuck_in_render_mode(self, faithful):
        with pytest.raises(StuckExpression):
            run_render(CODE, ast.Push("start", ast.UNIT_VALUE), faithful)
        with pytest.raises(StuckExpression):
            run_render(CODE, ast.Pop(), faithful)

    def test_pure_computation_fine_in_render(self, faithful):
        expr = ast.Post(ast.Prim("add", (ast.Num(1), ast.Num(2))))
        root = run_render(CODE, expr, faithful)
        assert root.leaves() == [ast.Num(3)]
