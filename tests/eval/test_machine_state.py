"""Standard-mode steps (ES-PURE, ES-ASSIGN, ES-PUSH, ES-POP)."""

import pytest

from helpers import page_code, run_state, seq, seq_value
from repro.core import ast
from repro.core.defs import GlobalDef
from repro.core.effects import STATE
from repro.core.errors import StuckExpression
from repro.core.prims import PrimSig
from repro.core.types import NUMBER, STRING
from repro.eval.natives import NativeTable
from repro.system.events import ExecEvent, PopEvent, PushEvent
from repro.system.services import Services

CODE = page_code(
    ast.UNIT_VALUE,
    globals_=[
        GlobalDef("n", NUMBER, ast.Num(0)),
        GlobalDef("s", STRING, ast.Str("")),
    ],
)


@pytest.fixture(params=[False, True], ids=["cek", "small-step"])
def faithful(request):
    return request.param


class TestAssign:
    def test_es_assign_updates_store(self, faithful):
        value, store, _q = run_state(
            CODE, ast.GlobalWrite("n", ast.Num(5)), faithful
        )
        assert value == ast.UNIT_VALUE
        assert store.lookup("n") == ast.Num(5)

    def test_assignment_evaluates_rhs_first(self, faithful):
        expr = ast.GlobalWrite(
            "n", ast.Prim("add", (ast.GlobalRead("n"), ast.Num(1)))
        )
        _v, store, _q = run_state(CODE, expr, faithful)
        assert store.lookup("n") == ast.Num(1)

    def test_rightmost_write_wins(self, faithful):
        expr = seq(
            STATE,
            ast.GlobalWrite("n", ast.Num(1)),
            ast.GlobalWrite("n", ast.Num(2)),
        )
        _v, store, _q = run_state(CODE, expr, faithful)
        assert store.lookup("n") == ast.Num(2)

    def test_read_own_write(self, faithful):
        expr = seq_value(
            STATE,
            ast.GlobalWrite("n", ast.Num(7)),
            ast.GlobalRead("n"),
        )
        value, _s, _q = run_state(CODE, expr, faithful)
        assert value == ast.Num(7)


class TestNavigation:
    def test_es_push_enqueues(self, faithful):
        _v, _s, queue = run_state(
            CODE, ast.Push("start", ast.UNIT_VALUE), faithful
        )
        assert queue.events() == (PushEvent("start", ast.UNIT_VALUE),)

    def test_es_pop_enqueues(self, faithful):
        _v, _s, queue = run_state(CODE, ast.Pop(), faithful)
        assert queue.events() == (PopEvent(),)

    def test_enqueue_order_left_to_right(self, faithful):
        """Enqueue adds to the left; dequeue removes from the right —
        so the first push executed is the first dequeued."""
        expr = seq(STATE, ast.Push("start", ast.UNIT_VALUE), ast.Pop())
        _v, _s, queue = run_state(CODE, expr, faithful)
        assert isinstance(queue.dequeue(), PushEvent)
        assert isinstance(queue.dequeue(), PopEvent)

    def test_push_evaluates_argument(self, faithful):
        expr = ast.Push(
            "start", ast.Proj(ast.Tuple((ast.UNIT_VALUE,)), 1)
        )
        _v, _s, queue = run_state(CODE, expr, faithful)
        assert queue.events()[0].arg == ast.UNIT_VALUE


class TestEffectConfinement:
    def test_render_constructs_stuck_in_state_mode(self, faithful):
        for expr in (
            ast.Post(ast.Num(1)),
            ast.SetAttr("margin", ast.Num(1)),
            ast.Boxed(ast.UNIT_VALUE),
        ):
            with pytest.raises(StuckExpression):
                run_state(CODE, expr, faithful)


class TestStatefulNatives:
    def _natives_and_services(self):
        natives = NativeTable()
        calls = []

        def impl(services, amount):
            calls.append(amount)
            services.clock.advance(amount)
            return float(len(calls))

        natives.register(PrimSig("tick", (NUMBER,), NUMBER, STATE), impl)
        return natives, Services(), calls

    def test_native_runs_in_state_mode(self, faithful):
        natives, services, calls = self._natives_and_services()
        value, _s, _q = run_state(
            CODE,
            ast.Prim("tick", (ast.Num(2),)),
            faithful,
            natives=natives,
            services=services,
        )
        assert value == ast.Num(1)
        assert calls == [2.0]
        assert services.clock.now == 2.0

    def test_native_stuck_in_pure_mode(self, faithful):
        from helpers import run_pure

        natives, services, _calls = self._natives_and_services()
        from repro.eval.machine import BigStep, SmallStep
        from repro.system.state import Store

        cls = SmallStep if faithful else BigStep
        machine = cls(CODE, natives=natives, services=services)
        with pytest.raises(StuckExpression):
            machine.run_pure(Store(), ast.Prim("tick", (ast.Num(1),)))
