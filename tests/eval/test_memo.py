"""Render-function memoization (§5's self-adjusting-computation sketch).

The contract: with ``memo_render=True`` every observable display is
structurally identical to the unmemoized run, repeated calls with the
same argument and read-set values are elided, and every way the output
could change (argument, read global — direct or through a callee, code
update) invalidates.
"""

import pytest

from repro.boxes.diff import tree_equal
from repro.core import ast
from repro.eval.memo import RenderMemo, global_read_sets
from repro.surface.compile import compile_source
from repro.system.runtime import Runtime

APP = """\
global greeting : string = "hi"
global clicks : number = 0

fun cell(n : number)
  boxed
    post indirect() || " " || n

fun indirect() : string
  return greeting

page start()
  render
    for i = 1 to 4 do
      cell(i)
    boxed
      post "clicks " || clicks
      on tap do
        clicks := clicks + 1
    boxed
      post "rename"
      on tap do
        greeting := "yo"
"""


def runtimes():
    compiled = compile_source(APP)
    plain = Runtime(compiled.code, natives=compiled.natives).start()
    memo = Runtime(
        compiled.code, natives=compiled.natives, memo_render=True
    ).start()
    return plain, memo


class TestReadSets:
    def test_direct_and_transitive_reads(self):
        compiled = compile_source(APP)
        read_sets = global_read_sets(compiled.code)
        assert read_sets["indirect"] == {"greeting"}
        assert "greeting" in read_sets["cell"]  # through the callee
        assert "clicks" not in read_sets["cell"]

    def test_eligibility(self):
        compiled = compile_source(APP)
        memo = RenderMemo(compiled.code)
        assert memo.eligible("cell")
        assert not memo.eligible("indirect")      # pure, not render
        for name in compiled.generated_functions:
            assert not memo.eligible(name)        # loop functions excluded


class TestEquivalence:
    def test_displays_identical_through_interaction(self):
        plain, memo = runtimes()
        assert tree_equal(plain.display, memo.display)
        for action in ("clicks 0", "clicks 1", "rename", "clicks 2"):
            plain.tap_text(action)
            memo.tap_text(action)
            assert tree_equal(plain.display, memo.display)

    def test_mortgage_app_identical(self):
        from repro.apps.mortgage import compile_mortgage
        from repro.stdlib.web import make_services

        compiled = compile_mortgage()
        plain = Runtime(
            compiled.code, natives=compiled.natives,
            services=make_services(),
        ).start()
        memo = Runtime(
            compiled.code, natives=compiled.natives,
            services=make_services(), memo_render=True,
        ).start()
        listing = plain.global_value("listings").items[0]
        label = "{}, {}".format(
            listing.items[0].value, listing.items[1].value
        )
        for runtime in (plain, memo):
            runtime.tap_text(label)
        assert tree_equal(plain.display, memo.display)


class TestCacheBehaviour:
    def test_rerender_hits(self):
        _plain, memo = runtimes()
        stats = memo.system.render_memo.stats()
        assert stats == {"hits": 0, "misses": 4, "entries": 4}
        memo.tap_text("clicks 0")  # clicks changes; cells don't read it
        assert memo.system.render_memo.stats()["hits"] == 4

    def test_read_global_change_invalidates(self):
        _plain, memo = runtimes()
        memo.tap_text("rename")  # greeting changes → all cell keys change
        stats = memo.system.render_memo.stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 8
        assert memo.contains_text("yo 3")

    def test_argument_participates_in_key(self):
        _plain, memo = runtimes()
        entries = memo.system.render_memo.stats()["entries"]
        assert entries == 4  # one per distinct argument

    def test_update_resets_cache(self):
        _plain, memo = runtimes()
        old_memo = memo.system.render_memo
        memo.update_code(compile_source(APP).code)
        assert memo.system.render_memo is not old_memo

    def test_navigation_still_works_on_cached_boxes(self):
        """box_id lookup is unaffected by replayed subtrees."""
        from repro.boxes.paths import boxes_created_by

        _plain, memo = runtimes()
        memo.tap_text("clicks 0")  # now every cell box is cache-replayed
        compiled_box_ids = {
            box.box_id for _p, box in memo.display.walk()
            if box.box_id is not None
        }
        for box_id in compiled_box_ids:
            assert boxes_created_by(memo.display, box_id)

    def test_faithful_machine_ignores_memo_flag(self):
        compiled = compile_source(APP)
        runtime = Runtime(
            compiled.code, natives=compiled.natives,
            faithful=True, memo_render=True,
        ).start()
        assert runtime.system.render_memo is None
