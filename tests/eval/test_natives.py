"""Primitive implementations and the native registry."""

import math

import pytest

from repro.core import ast
from repro.core.effects import PURE, STATE
from repro.core.errors import EvalError, NativeError, ReproError
from repro.core.prims import PrimSig
from repro.core.types import NUMBER, STRING, list_of
from repro.eval.natives import NativeTable, apply_prim, operator_signature
from repro.system.services import Services


def num(x):
    return ast.Num(x)


def string(s):
    return ast.Str(s)


def nums(*values):
    return ast.ListLit(tuple(ast.Num(v) for v in values), NUMBER)


def apply_(op, *args):
    return apply_prim(op, tuple(args))


class TestArithmetic:
    def test_basics(self):
        assert apply_("add", num(2), num(3)) == num(5)
        assert apply_("sub", num(2), num(3)) == num(-1)
        assert apply_("mul", num(4), num(2.5)) == num(10)
        assert apply_("div", num(7), num(2)) == num(3.5)
        assert apply_("pow", num(2), num(10)) == num(1024)
        assert apply_("neg", num(5)) == num(-5)

    def test_div_by_zero_is_a_defined_fault(self):
        with pytest.raises(EvalError):
            apply_("div", num(1), num(0))

    def test_mod_sign_follows_divisor(self):
        """math->mod of Fig. 5 must behave for the I3 check mod(i,5)==4."""
        assert apply_("mod", num(9), num(5)) == num(4)
        assert apply_("mod", num(-1), num(5)) == num(4)

    def test_mod_by_zero(self):
        with pytest.raises(EvalError):
            apply_("mod", num(1), num(0))

    def test_rounding_family(self):
        assert apply_("floor", num(2.9)) == num(2)
        assert apply_("ceil", num(2.1)) == num(3)
        assert apply_("round", num(2.5)) == num(3)
        assert apply_("round", num(-2.5)) == num(-3)
        assert apply_("abs", num(-4)) == num(4)

    def test_sqrt(self):
        assert apply_("sqrt", num(9)) == num(3)
        with pytest.raises(EvalError):
            apply_("sqrt", num(-1))

    def test_min_max(self):
        assert apply_("min", num(2), num(5)) == num(2)
        assert apply_("max", num(2), num(5)) == num(5)


class TestComparisonsAndLogic:
    def test_comparisons_yield_numeric_booleans(self):
        assert apply_("lt", num(1), num(2)) == num(1)
        assert apply_("ge", num(1), num(2)) == num(0)

    def test_structural_equality(self):
        assert apply_("eq", string("a"), string("a")) == num(1)
        assert apply_("eq", nums(1, 2), nums(1, 2)) == num(1)
        assert apply_("ne", nums(1), nums(2)) == num(1)

    def test_logic(self):
        assert apply_("and", num(1), num(0)) == num(0)
        assert apply_("or", num(0), num(2)) == num(1)
        assert apply_("not", num(0)) == num(1)


class TestStrings:
    def test_concat(self):
        assert apply_("concat", string("a"), string("b")) == string("ab")

    def test_str_of_num_integral_has_no_decimal_point(self):
        assert apply_("str_of_num", num(42)) == string("42")
        assert apply_("str_of_num", num(2.5)) == string("2.5")

    def test_num_of_str(self):
        assert apply_("num_of_str", string("3.5")) == num(3.5)
        with pytest.raises(EvalError):
            apply_("num_of_str", string("many"))

    def test_length_and_substring(self):
        assert apply_("str_length", string("abcd")) == num(4)
        assert apply_("str_sub", string("abcd"), num(1), num(3)) == string("bc")
        with pytest.raises(EvalError):
            apply_("str_sub", string("ab"), num(0), num(5))

    def test_num_format(self):
        """The I2 improvement's formatting path."""
        assert apply_("num_format", num(1234.567), num(2)) == string("1234.57")
        assert apply_("num_format", num(5), num(0)) == string("5")

    def test_case_and_repeat(self):
        assert apply_("str_upper", string("ab")) == string("AB")
        assert apply_("str_lower", string("AB")) == string("ab")
        assert apply_("str_repeat", string("ab"), num(3)) == string("ababab")
        assert apply_("str_contains", string("abcd"), string("bc")) == num(1)


class TestLists:
    def test_length_get(self):
        assert apply_("list_length", nums(5, 6)) == num(2)
        assert apply_("list_get", nums(5, 6), num(1)) == num(6)

    def test_get_bounds_checked(self):
        with pytest.raises(EvalError):
            apply_("list_get", nums(5), num(1))
        with pytest.raises(EvalError):
            apply_("list_get", nums(5), num(0.5))

    def test_append_concat_reverse_slice(self):
        assert apply_("list_append", nums(1), num(2)) == nums(1, 2)
        assert apply_("list_concat", nums(1), nums(2, 3)) == nums(1, 2, 3)
        assert apply_("list_reverse", nums(1, 2)) == nums(2, 1)
        assert apply_("list_slice", nums(1, 2, 3, 4), num(1), num(3)) == nums(2, 3)

    def test_range(self):
        assert apply_("list_range", num(0), num(3)) == nums(0, 1, 2)
        assert apply_("list_range", num(3), num(3)) == nums()


class TestNativeTable:
    def _table(self):
        table = NativeTable()
        sig = PrimSig("greet", (STRING,), STRING, STATE)
        table.register(sig, lambda services, name: "hi " + name)
        return table

    def test_register_and_apply(self):
        table = self._table()
        result = apply_prim(
            "greet", (string("ann"),), natives=table, services=Services()
        )
        assert result == string("hi ann")

    def test_cannot_shadow_builtin(self):
        table = NativeTable()
        with pytest.raises(ReproError):
            table.register(PrimSig("add", (), NUMBER, PURE), lambda s: 0)

    def test_duplicate_registration_rejected(self):
        table = self._table()
        with pytest.raises(ReproError):
            table.register(
                PrimSig("greet", (), NUMBER, PURE), lambda s: 0
            )

    def test_operator_signature_resolution_order(self):
        table = self._table()
        assert operator_signature("add", table).name == "add"
        assert operator_signature("greet", table).effect is STATE
        assert operator_signature("ghost", table) is None

    def test_host_exception_wrapped(self):
        table = NativeTable()
        table.register(
            PrimSig("boom", (), NUMBER, STATE),
            lambda services: 1 / 0,
        )
        with pytest.raises(NativeError):
            apply_prim("boom", (), natives=table, services=Services())

    def test_merged_with(self):
        left = self._table()
        right = NativeTable()
        right.register(PrimSig("other", (), NUMBER, PURE), lambda s: 1.0)
        merged = left.merged_with(right)
        assert merged.signature("greet") and merged.signature("other")
        with pytest.raises(ReproError):
            left.merged_with(self._table())

    def test_unknown_operator(self):
        with pytest.raises(EvalError):
            apply_prim("no_such_op", ())
