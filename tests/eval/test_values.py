"""Value helpers: Python conversion, truthiness, display formatting."""

import pytest

from repro.core import ast
from repro.core.effects import PURE
from repro.core.errors import EvalError
from repro.core.types import (
    NUMBER,
    STRING,
    UNIT,
    fun,
    list_of,
    tuple_of,
)
from repro.eval.values import (
    bool_value,
    format_for_post,
    from_python,
    to_python,
    truthy,
    value_type,
)


class TestPythonRoundTrip:
    CASES = [
        (3.5, NUMBER),
        ("hello", STRING),
        ((1.0, "a"), tuple_of(NUMBER, STRING)),
        ([1.0, 2.0], list_of(NUMBER)),
        ((), UNIT),
        ([("x", 1.0)], list_of(tuple_of(STRING, NUMBER))),
        ([], list_of(NUMBER)),
    ]

    @pytest.mark.parametrize("data,type_", CASES)
    def test_round_trip(self, data, type_):
        value = from_python(data, type_)
        assert value.is_value()
        assert to_python(value) == data

    def test_int_coerced_to_float(self):
        assert from_python(3, NUMBER) == ast.Num(3.0)

    def test_bool_rejected_as_number(self):
        with pytest.raises(EvalError):
            from_python(True, NUMBER)

    def test_wrong_shapes_rejected(self):
        with pytest.raises(EvalError):
            from_python("x", NUMBER)
        with pytest.raises(EvalError):
            from_python((1.0,), tuple_of(NUMBER, NUMBER))
        with pytest.raises(EvalError):
            from_python(1.0, fun(UNIT, UNIT, PURE))

    def test_closure_not_convertible(self):
        lam = ast.Lam("x", NUMBER, ast.Var("x"), PURE)
        with pytest.raises(EvalError):
            to_python(lam)


class TestTruthiness:
    def test_nonzero_true(self):
        assert truthy(ast.Num(1))
        assert truthy(ast.Num(-0.5))
        assert not truthy(ast.Num(0))

    def test_non_number_rejected(self):
        with pytest.raises(EvalError):
            truthy(ast.Str("true"))

    def test_bool_value(self):
        assert bool_value(True) == ast.Num(1)
        assert bool_value(False) == ast.Num(0)


class TestValueType:
    def test_function_free_values(self):
        assert value_type(ast.Num(1)) == NUMBER
        assert value_type(ast.Str("x")) == STRING
        assert value_type(ast.Tuple((ast.Num(1), ast.Str("a")))) == tuple_of(
            NUMBER, STRING
        )
        assert value_type(ast.ListLit((ast.Num(1),), NUMBER)) == list_of(
            NUMBER
        )

    def test_empty_list_uses_annotation(self):
        assert value_type(ast.ListLit((), STRING)) == list_of(STRING)

    def test_lambda_has_no_cheap_type(self):
        assert value_type(ast.Lam("x", NUMBER, ast.Var("x"), PURE)) is None

    def test_heterogeneous_list_rejected(self):
        bad = ast.ListLit((ast.Num(1), ast.Str("x")), NUMBER)
        assert value_type(bad) is None


class TestFormatting:
    def test_integral_numbers_have_no_point(self):
        """The display shows 'payment: $1199', not '$1199.0' (Fig. 1)."""
        assert format_for_post(ast.Num(1199)) == "1199"

    def test_fractional_numbers_keep_point(self):
        assert format_for_post(ast.Num(2.5)) == "2.5"

    def test_strings_verbatim(self):
        assert format_for_post(ast.Str("x y")) == "x y"

    def test_tuples_and_lists(self):
        assert format_for_post(ast.Tuple((ast.Num(1), ast.Str("a")))) == "(1, a)"
        assert format_for_post(ast.ListLit((ast.Num(1),), NUMBER)) == "[1]"

    def test_closures_opaque(self):
        lam = ast.Lam("x", NUMBER, ast.Var("x"), PURE)
        assert format_for_post(lam) == "<function>"
