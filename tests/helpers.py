"""Shared builders for the test-suite.

Tests at the core-calculus level construct programs directly from AST
nodes; these helpers keep that terse: ``seq`` for statement sequencing,
``page_code`` for one-page programs, ``run_state``/``run_render`` for
one-shot evaluations against fresh components.
"""

from __future__ import annotations

from repro.core import (
    App,
    Boxed,
    Code,
    FunDef,
    GlobalDef,
    GlobalRead,
    GlobalWrite,
    Lam,
    NUMBER,
    Num,
    PageDef,
    Post,
    Prim,
    PURE,
    RENDER,
    STATE,
    SetAttr,
    Str,
    Tuple,
    UNIT,
    UNIT_VALUE,
    fresh_name,
)
from repro.eval.machine import BigStep, SmallStep
from repro.system.events import EventQueue
from repro.system.state import Store


def seq(effect, *exprs):
    """Evaluate ``exprs`` left to right, discarding results; yields ``()``.

    The same let-chain encoding the surface lowering emits.
    """
    result = UNIT_VALUE
    for expr in reversed(exprs):
        result = App(Lam(fresh_name("seq"), UNIT, result, effect), expr)
    return result


def seq_value(effect, *exprs):
    """Like :func:`seq` but the last expression's value is the result."""
    if not exprs:
        return UNIT_VALUE
    *effects, last = exprs
    result = last
    for expr in reversed(effects):
        result = App(Lam(fresh_name("seq"), UNIT, result, effect), expr)
    return result


def state_lam(body):
    """``λs(_ : ()). body`` — an init-body / handler shape."""
    return Lam(fresh_name("a"), UNIT, body, STATE)


def render_lam(body):
    """``λr(_ : ()). body`` — a render-body shape."""
    return Lam(fresh_name("a"), UNIT, body, RENDER)


def page_code(render_body, init_body=None, globals_=(), extra_defs=()):
    """A one-page program: ``page start`` + the given bodies.

    ``render_body``/``init_body`` are expressions of type ``()`` under
    ``r``/``s`` respectively.
    """
    init = state_lam(init_body if init_body is not None else UNIT_VALUE)
    render = render_lam(render_body)
    defs = list(globals_) + list(extra_defs)
    defs.append(PageDef("start", UNIT, init, render))
    return Code(defs)


def counter_core_code(label="count: "):
    """The counter app built directly in the core calculus.

    Mirrors ``repro.apps.counter``: a counter box (tap to increment) and a
    reset box.
    """
    increment = state_lam(
        GlobalWrite("count", Prim("add", (GlobalRead("count"), Num(1))))
    )
    reset = state_lam(GlobalWrite("count", Num(0)))
    render_body = seq(
        RENDER,
        Boxed(
            seq(
                RENDER,
                Post(
                    Prim(
                        "concat",
                        (
                            Str(label),
                            Prim("str_of_num", (GlobalRead("count"),)),
                        ),
                    )
                ),
                SetAttr("ontap", increment),
            ),
            box_id=1,
        ),
        Boxed(
            seq(RENDER, Post(Str("reset")), SetAttr("ontap", reset)),
            box_id=2,
        ),
    )
    return page_code(
        render_body, globals_=[GlobalDef("count", NUMBER, Num(0))]
    )


def fresh_components():
    """A fresh (store, queue) pair."""
    return Store(), EventQueue()


def run_pure(code, expr, faithful=False, natives=None, store=None):
    machine = _machine(code, faithful, natives)
    return machine.run_pure(store if store is not None else Store(), expr)


def run_state(code, expr, faithful=False, natives=None, store=None,
              queue=None, services=None):
    machine = _machine(code, faithful, natives, services)
    store = store if store is not None else Store()
    queue = queue if queue is not None else EventQueue()
    value = machine.run_state(store, queue, expr)
    return value, store, queue


def run_render(code, expr, faithful=False, natives=None, store=None):
    machine = _machine(code, faithful, natives)
    return machine.run_render(store if store is not None else Store(), expr)


def _machine(code, faithful, natives, services=None):
    from repro.eval.natives import EMPTY_NATIVES

    cls = SmallStep if faithful else BigStep
    return cls(code, natives=natives or EMPTY_NATIVES, services=services)
