"""Code digests: invariant under name shifts, sensitive to meaning.

The digest answers "did this function's code change?" for the
update-surviving memo (docs/PERF.md).  These tests pin down both
directions: edits that must NOT move a digest (alpha-renaming, fresh
-name counter shifts from edits elsewhere in the file) and edits that
MUST (body changes, callee changes, box-id shifts).
"""

from repro.core import ast
from repro.core.defs import Code, FunDef, GlobalDef
from repro.core.effects import PURE, RENDER
from repro.core.types import FunType, NUMBER, UNIT
from repro.incremental import code_digests, function_canon
from repro.surface.compile import compile_source


def num_fun(name, body_of, param="x"):
    """fun name(param : number) : number = body_of(Var(param))"""
    return FunDef(
        name,
        FunType(NUMBER, NUMBER, PURE),
        ast.Lam(param, NUMBER, body_of(ast.Var(param)), PURE),
    )


class TestAlphaNormalization:
    def test_bound_names_do_not_matter(self):
        plus_one = lambda v: ast.Prim("add", (v, ast.Num(1.0)))
        a = Code([num_fun("f", plus_one, param="x%3")])
        b = Code([num_fun("f", plus_one, param="x%7")])
        assert code_digests(a)["f"] == code_digests(b)["f"]

    def test_shadowing_is_distinguished(self):
        # lam x. lam y. x  vs  lam x. lam y. y — same names available,
        # different binder: naive name-dropping would conflate them.
        outer = lambda inner: ast.Lam(
            "x", NUMBER,
            ast.Lam("y", NUMBER, inner, PURE),
            PURE,
        )
        code_x = Code([FunDef(
            "f", FunType(NUMBER, FunType(NUMBER, NUMBER, PURE), PURE),
            outer(ast.Var("x")),
        )])
        code_y = Code([FunDef(
            "f", FunType(NUMBER, FunType(NUMBER, NUMBER, PURE), PURE),
            outer(ast.Var("y")),
        )])
        assert code_digests(code_x)["f"] != code_digests(code_y)["f"]

    def test_literal_change_changes_digest(self):
        a = Code([num_fun("f", lambda v: ast.Prim("add", (v, ast.Num(1.0))))])
        b = Code([num_fun("f", lambda v: ast.Prim("add", (v, ast.Num(2.0))))])
        assert code_digests(a)["f"] != code_digests(b)["f"]


class TestCalleeClosure:
    def make(self, helper_body):
        helper = num_fun("helper", helper_body)
        caller = num_fun(
            "caller", lambda v: ast.App(ast.FunRef("helper"), v)
        )
        return Code([helper, caller])

    def test_callee_edit_propagates_to_caller(self):
        a = self.make(lambda v: ast.Prim("add", (v, ast.Num(1.0))))
        b = self.make(lambda v: ast.Prim("add", (v, ast.Num(2.0))))
        assert code_digests(a)["caller"] != code_digests(b)["caller"]

    def test_unrelated_function_edit_does_not_propagate(self):
        base = self.make(lambda v: v)
        other = lambda n: num_fun("other", lambda v: ast.Num(float(n)))
        a = Code(list(base) + [other(1)])
        b = Code(list(base) + [other(2)])
        assert code_digests(a)["caller"] == code_digests(b)["caller"]
        assert code_digests(a)["other"] != code_digests(b)["other"]

    def test_rename_with_same_body_same_digest(self):
        # Entries are keyed by digest, not name: a pure rename hits.
        body = lambda v: ast.Prim("add", (v, ast.Num(1.0)))
        a = Code([num_fun("before", body)])
        b = Code([num_fun("after", body)])
        assert code_digests(a)["before"] == code_digests(b)["after"]


class TestSurfaceCompilerShifts:
    """Editing *earlier* in the file shifts the compiler's fresh-name and
    loop-function counters in later functions; digests must not move."""

    TEMPLATE = """\
global n : number = {init}

fun first(x : number)
  for i = 1 to {bound} do
    post "" || x

fun second(y : number)
  for i = 1 to 3 do
    post "" || y

page start()
  render
    second(n)
"""

    def test_counter_shift_leaves_later_digest_fixed(self):
        a = compile_source(self.TEMPLATE.format(init=1, bound=2)).code
        b = compile_source(self.TEMPLATE.format(init=1, bound=9)).code
        da, db = code_digests(a), code_digests(b)
        assert da["first"] != db["first"]
        # `second` follows `first` in the file, so its generated loop
        # function got a different $-name — the digest inlines it away.
        assert da["second"] == db["second"]

    def test_generated_functions_are_not_digested(self):
        code = compile_source(self.TEMPLATE.format(init=1, bound=2)).code
        digests = code_digests(code)
        assert all(not name.startswith("$") for name in digests)
        assert any(
            definition.name.startswith("$")
            for definition in code.functions()
        )


class TestRenderSensitivity:
    def render_fun(self, box_id):
        return Code([FunDef(
            "view",
            FunType(UNIT, UNIT, RENDER),
            ast.Lam(
                "u", UNIT,
                ast.Boxed(ast.Post(ast.Str("hi")), box_id=box_id),
                RENDER,
            ),
        )])

    def test_box_id_shift_changes_digest(self):
        # Cached trees bake box ids in and navigation dereferences them,
        # so a shifted id must be a (safe) miss, never a stale replay.
        a = code_digests(self.render_fun(3))["view"]
        b = code_digests(self.render_fun(4))["view"]
        assert a != b

    def test_canon_mentions_global_reads(self):
        code = Code([
            GlobalDef("g", NUMBER, ast.Num(0.0)),
            FunDef(
                "f", FunType(UNIT, NUMBER, PURE),
                ast.Lam("u", UNIT, ast.GlobalRead("g"), PURE),
            ),
        ])
        assert "g:g" in function_canon("f", code)

    def test_unknown_nodes_fail_closed(self):
        # A node type the canonicalizer does not know must still produce
        # a token (repr-based), not silently vanish from the hash.
        class Mystery(ast.Expr):
            __slots__ = ()

            def __repr__(self):
                return "Mystery()"

        code = Code([FunDef(
            "f", FunType(UNIT, UNIT, PURE),
            ast.Lam("u", UNIT, Mystery(), PURE),
        )])
        assert "Mystery()" in function_canon("f", code)
