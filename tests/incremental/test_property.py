"""Memoization is unobservable — a hypothesis property over live edits.

For random well-formed programs (helpers carrying the render effect, so
the memo actually engages) and random well-typed edit sequences, a
memoized system and an unmemoized system must produce **byte-identical
HTML** after every update.

The historical caveat: box *occurrence numbers* (the k-th on-screen
occurrence of source box ``box_id``, emitted as ``data-occurrence`` and
used by Fig. 2 UI→code navigation) are assigned in document order by
each render pass, so naively splicing a cached subtree replays the
occurrence numbers of the *original* render position.  The incremental
engine closes this by re-stamping occurrences during replay
(:func:`repro.eval.memo.replay_items`), and this property is the
regression net: any divergence — occurrence numbers included — fails
the byte comparison.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.metatheory.generators import edited_codes, live_programs
from repro.render.html_backend import render_html
from repro.system.transitions import System

_SETTINGS = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def editing_sessions(draw, max_edits=3):
    """A start program plus a sequence of well-typed successor programs."""
    code = draw(live_programs())
    current = code
    edits = []
    for _ in range(draw(st.integers(1, max_edits))):
        current = draw(edited_codes(current))
        edits.append(current)
    return code, edits


def html_of(system):
    return render_html(system.display)


class TestMemoizationIsUnobservable:
    @_SETTINGS
    @given(session=editing_sessions())
    def test_byte_identical_html_through_edit_sequences(self, session):
        code, edits = session
        memoized = System(code, memo_render=True)
        plain = System(code, memo_render=False)
        memoized.run_to_stable()
        plain.run_to_stable()
        assert html_of(memoized) == html_of(plain)
        for new_code in edits:
            memoized.update(new_code)
            plain.update(new_code)
            memoized.run_to_stable()
            plain.run_to_stable()
            assert html_of(memoized) == html_of(plain)

    @_SETTINGS
    @given(code=live_programs())
    def test_byte_identical_html_on_pure_rerender(self, code):
        # Same program, second render: everything that can hit, hits —
        # and the document must not move a byte (occurrence numbers
        # included).
        memoized = System(code, memo_render=True)
        memoized.run_to_stable()
        first = html_of(memoized)
        memoized._invalidate()
        memoized.run_to_stable()
        assert html_of(memoized) == first
