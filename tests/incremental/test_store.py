"""The bounded LRU memo store: capacity, recency, eviction accounting."""

from repro.api import Tracer
from repro.incremental import MemoEntry, MemoStore


def entry(tag):
    return MemoEntry(
        digest="d{}".format(tag), arg=None, reads=[],
        items=[], value=None, boxes=0,
    )


class TestLRU:
    def test_get_put_roundtrip(self):
        store = MemoStore(max_entries=2)
        e = entry(1)
        store.put(("d1", None), e)
        assert store.get(("d1", None)) is e
        assert store.get(("absent", None)) is None
        assert ("d1", None) in store
        assert len(store) == 1

    def test_capacity_evicts_least_recently_used(self):
        store = MemoStore(max_entries=2)
        store.put(("a", None), entry("a"))
        store.put(("b", None), entry("b"))
        store.get(("a", None))            # refresh a: b is now LRU
        store.put(("c", None), entry("c"))
        assert ("a", None) in store
        assert ("b", None) not in store
        assert ("c", None) in store
        assert store.evictions == 1

    def test_overwriting_existing_key_does_not_evict(self):
        store = MemoStore(max_entries=2)
        store.put(("a", None), entry("a"))
        store.put(("b", None), entry("b"))
        store.put(("a", None), entry("a2"))
        assert store.evictions == 0
        assert len(store) == 2

    def test_eviction_counts_into_tracer(self):
        tracer = Tracer()
        store = MemoStore(max_entries=1, tracer=tracer)
        store.put(("a", None), entry("a"))
        store.put(("b", None), entry("b"))
        store.put(("c", None), entry("c"))
        assert tracer.metrics()["incremental.memo_evictions"] == 2

    def test_clear_and_discard(self):
        store = MemoStore(max_entries=4)
        store.put(("a", None), entry("a"))
        store.put(("b", None), entry("b"))
        store.discard(("a", None))
        store.discard(("never-there", None))
        assert len(store) == 1
        store.clear()
        assert len(store) == 0

    def test_stats(self):
        store = MemoStore(max_entries=1)
        store.put(("a", None), entry("a"))
        store.put(("b", None), entry("b"))
        assert store.stats() == {
            "entries": 1, "max_entries": 1, "evictions": 1,
        }


class TestSystemCapPlumbs:
    def test_session_memo_cache_is_bounded(self):
        # End-to-end: a memoized system's store honours the LRU cap even
        # across distinct arguments (each row call is a distinct entry).
        from repro.apps.gallery import function_gallery_source
        from repro.api import LiveSession

        session = LiveSession(
            function_gallery_source(rows=6, cols=2), memo_render=True
        )
        store = session.runtime.system._memo_store
        assert len(store) <= store.stats()["max_entries"]
        assert len(store) > 0
