"""The shared memo store under concurrent mutation (repro.cluster).

Promoting :class:`MemoStore` from per-System to per-program makes it a
concurrency point: many host threads hit one LRU.  These tests hammer
the store from threads and then check the soundness story end to end —
cross-session hits fire, stale entries are rejected by value, origins
are tracked.
"""

import threading

from repro.api import Tracer
from repro.incremental import MemoEntry, MemoStore
from repro.incremental.store import SessionMemoView
from repro.serve.host import SessionHost


def entry(tag, origin=None):
    return MemoEntry(
        digest="d{}".format(tag), arg=None, reads=[],
        items=[], value=tag, boxes=0, origin=origin,
    )


def hammer(threads):
    errors = []

    def run(target):
        try:
            target()
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    workers = [
        threading.Thread(target=run, args=(target,)) for target in threads
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=30)
    assert errors == []


class TestParallelAccess:
    def test_parallel_hits_and_puts_stay_consistent(self):
        store = MemoStore(max_entries=64)
        keys = {("d{}".format(n), None): n for n in range(32)}
        for key, n in keys.items():
            store.put(key, entry(n))

        def reader():
            for _ in range(300):
                for key in keys:
                    found = store.get(key)
                    # An entry may be mid-replacement but never torn.
                    assert found is None or found.digest == key[0]

        def writer():
            for _round in range(100):
                for key, n in keys.items():
                    store.put(key, entry(n))

        hammer([reader, reader, reader, writer, writer])
        assert len(store) == len(keys)

    def test_parallel_eviction_races_respect_the_cap(self):
        store = MemoStore(max_entries=16, tracer=Tracer())
        total = 8 * 50

        def writer(offset):
            def run():
                for n in range(50):
                    key = ("d{}-{}".format(offset, n), None)
                    store.put(key, entry(key[0]))
                    store.get(key)
            return run

        hammer([writer(n) for n in range(8)])
        assert len(store) <= 16
        assert store.evictions == total - len(store)

    def test_parallel_clear_against_writers(self):
        store = MemoStore(max_entries=64)

        def writer():
            for n in range(200):
                store.put(("d{}".format(n % 32), None), entry(n))

        def clearer():
            for _ in range(50):
                store.clear()

        hammer([writer, writer, clearer])
        assert len(store) <= 32


class TestSessionMemoView:
    def test_puts_are_stamped_with_the_sessions_origin(self):
        store = MemoStore()
        view = SessionMemoView(store, origin="s-1")
        view.put(("d1", None), entry(1))
        assert store.get(("d1", None)).origin == "s-1"

    def test_shared_hit_counts_only_foreign_origins(self):
        counted = []
        store = MemoStore()
        view = SessionMemoView(store, origin="s-1", count=counted.append)
        view.note_shared_hit(entry(1, origin="s-2"))
        view.note_shared_hit(entry(2, origin="s-1"))   # own work
        view.note_shared_hit(entry(3, origin=None))    # private store
        assert counted == ["cluster.memo.shared_hits"]

    def test_views_share_one_store(self):
        store = MemoStore()
        SessionMemoView(store, origin="a").put(("d1", None), entry(1))
        assert SessionMemoView(store, origin="b").get(
            ("d1", None)
        ).value == 1


class TestSharedAcrossSessions:
    """The soundness story end to end through a real host."""

    def _gallery_host(self):
        from repro.apps.gallery import function_gallery_source

        return SessionHost(
            pool_size=8,
            default_source=function_gallery_source(rows=4, cols=3),
            tracer=Tracer(),
            memo_store=MemoStore(),
            session_kwargs={"reuse_boxes": True, "memo_render": True},
        )

    def test_second_session_rides_the_firsts_renders(self):
        host = self._gallery_host()
        first = host.create()
        host.render(first)
        before = host.metrics()["cluster.memo.shared_hits"]
        second = host.create()
        host.render(second)
        assert host.metrics()["cluster.memo.shared_hits"] > before

    def test_stale_entries_reject_by_value_not_falsely_hit(self):
        # A tap in one session changes a global its cells read; the
        # other session's entries are version-stale for it and must be
        # re-validated by value — the tapping session sees its own new
        # state, never the neighbour's cached frame.
        host = self._gallery_host()
        first = host.create()
        untapped, _gen, _ = host.render(first)
        second = host.create()
        host.tap(second, text="[4]")
        tapped, _gen, _ = host.render(second)
        assert tapped != untapped
        # The untouched session still renders its original frame.
        assert host.render(first)[0] == untapped

    def test_parallel_sessions_on_one_shared_store(self):
        host = self._gallery_host()
        tokens = [host.create() for _ in range(6)]

        def render(token):
            def run():
                for _ in range(5):
                    html, _generation, _modified = host.render(token)
                    assert html
            return run

        hammer([render(token) for token in tokens])
        assert host.metrics()["cluster.memo.shared_hits"] > 0
