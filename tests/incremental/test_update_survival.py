"""Memo entries surviving UPDATE — the tentpole behaviour.

An edit swaps the whole evaluator (and its RenderMemo view), but the
MemoStore lives with the System: the first render after UPDATE replays
every call whose digest and read-set values are unchanged.  These tests
drive real edits through LiveSession/System and assert exactly which
entries survive, what the EditResult and the metric catalog report, and
that the serve layer's HTML short-circuit fires on fully-memoized
re-renders.
"""

from repro.api import LiveSession, Tracer
from repro.apps.gallery import function_gallery_source
from repro.core import ast
from repro.core.defs import Code, FunDef, PageDef
from repro.core.effects import RENDER, STATE
from repro.core.prims import PrimSig
from repro.core.types import FunType, STRING, UNIT
from repro.eval.natives import NativeTable
from repro.render.html_backend import render_html
from repro.system.transitions import System

ROWS, COLS = 4, 3


def gallery_session(**kwargs):
    kwargs.setdefault("memo_render", True)
    return LiveSession(function_gallery_source(rows=ROWS, cols=COLS), **kwargs)


class TestEntriesSurviveUpdate:
    def test_warm_edit_replays_every_helper(self):
        session = gallery_session()
        result = session.replace_text('"gallery"', '"edited"')
        assert result.applied
        # The title global is read only by the page's inline header, so
        # no helper digest or read-set value moved.  Hits count the
        # *outermost* replayed calls — the ROWS row calls — because a
        # row hit splices its cached subtree, cells included, without
        # ever probing the cell entries.  The box count shows the full
        # reuse: every row box plus every cell box.
        assert result.memo_hits == ROWS
        assert result.memo_misses == 0
        assert result.replayed_boxes == ROWS + ROWS * COLS
        assert "edited" in session.screenshot()

    def test_memoized_update_html_matches_unmemoized(self):
        memoized = gallery_session()
        plain = gallery_session(memo_render=False)
        for edit in (('"gallery"', '"one"'), ('"one"', '"two"')):
            assert memoized.replace_text(*edit).applied
            assert plain.replace_text(*edit).applied
            assert render_html(memoized.display) == render_html(plain.display)

    def test_unmemoized_session_reports_zero(self):
        session = gallery_session(memo_render=False)
        result = session.replace_text('"gallery"', '"edited"')
        assert result.applied
        assert result.memo_hits == result.memo_misses == 0
        assert result.replayed_boxes == 0

    def test_rejected_edit_reports_zero(self):
        session = gallery_session()
        result = session.edit_source("page start()\n  render\n    nonsense(")
        assert not result.applied
        assert result.memo_hits == result.memo_misses == 0

    def test_edited_helper_misses_untouched_helper_hits(self):
        session = gallery_session()
        # Change every cell's body: cell misses everywhere; row calls
        # cell, so row's digest changes too — nothing replays.
        result = session.replace_text('"["', '"<"')
        assert result.applied
        assert result.memo_hits == 0
        assert result.memo_misses == ROWS * COLS + ROWS

    def test_row_only_edit_keeps_cell_entries(self):
        session = gallery_session()
        result = session.replace_text(
            "box.horizontal := true", "box.horizontal := false"
        )
        assert result.applied
        # row's digest moved (its own body changed) but cell's did not:
        # the ROWS*COLS cell entries replay inside re-executed rows.
        assert result.memo_hits == ROWS * COLS
        assert result.memo_misses == ROWS

    def test_rename_with_identical_body_still_hits(self):
        session = gallery_session()
        # Entries are keyed by digest, not name: renaming cell→tile
        # replays all cell entries.  (row's body changed — its call site
        # now says tile — so the ROWS row entries miss.)
        result = session.edit_source(
            session.source.replace("cell", "tile")
        )
        assert result.applied
        assert result.memo_hits == ROWS * COLS
        assert result.memo_misses == ROWS


class TestWriteVersioning:
    def test_assigned_global_survives_init_edit(self):
        session = gallery_session()
        session.tap_text("[5]")  # selected := 5 — now version > 0
        result = session.replace_text(
            "selected : number = -1", "selected : number = -2"
        )
        assert result.applied
        # EP-GLOBAL reads the *assigned* value; the declared init is
        # dead, so every outermost (row) entry's version-stamped read
        # slot still validates on the integer fast path.
        assert result.memo_hits == ROWS
        assert result.memo_misses == 0

    def test_unassigned_global_init_edit_invalidates_readers(self):
        session = gallery_session()
        # selected was never assigned: version 0 means the read came
        # from the declared init, which this edit changes under a fixed
        # digest — the deep compare must catch it.
        result = session.replace_text(
            "selected : number = -1", "selected : number = 5"
        )
        assert result.applied
        assert result.memo_misses == ROWS * COLS + ROWS
        assert result.memo_hits == 0
        assert "yellow" in render_html(session.display)

    def test_event_between_renders_invalidates_readers_only(self):
        session = gallery_session()
        before = dict(session.runtime.system.last_render_stats)
        assert before["misses"] == ROWS * COLS + ROWS  # cold render
        session.tap_text("[5]")  # selected := 5, re-renders
        after = session.runtime.system.last_render_stats
        # Every cell reads selected (the highlight test), so cells miss;
        # rows do not read it, but they *call* cell — a row entry's
        # correctness covers its cells' output, so rows miss too via
        # their recorded read of selected.
        assert after["hits"] == 0
        assert after["misses"] == ROWS * COLS + ROWS

    def test_noop_rerender_is_all_hits(self):
        session = gallery_session()
        system = session.runtime.system
        system._invalidate()
        system.run_to_stable()
        assert system.last_render_stats["hits"] == ROWS
        assert system.last_render_stats["misses"] == 0


class TestNativeIdentity:
    SIG = PrimSig("shout", (STRING,), STRING, RENDER, "uppercase")

    def make_system(self, impl):
        """Two memoized render helpers: ``view`` calls the native
        ``shout``; ``plain`` is pure program code."""
        natives = NativeTable()
        natives.register(self.SIG, impl)
        view = FunDef(
            "view",
            FunType(UNIT, UNIT, RENDER),
            ast.Lam(
                "u", UNIT,
                ast.Boxed(
                    ast.Post(ast.Prim("shout", (ast.Str("hello"),))),
                    box_id=1,
                ),
                RENDER,
            ),
        )
        plain = FunDef(
            "plain",
            FunType(UNIT, UNIT, RENDER),
            ast.Lam(
                "u", UNIT,
                ast.Boxed(ast.Post(ast.Str("aside")), box_id=2),
                RENDER,
            ),
        )
        page = PageDef(
            "start", UNIT,
            ast.Lam("a", UNIT, ast.UNIT_VALUE, STATE),
            ast.Lam(
                "a", UNIT,
                ast.App(
                    ast.Lam(
                        "seq", UNIT,
                        ast.App(ast.FunRef("plain"), ast.UNIT_VALUE),
                        RENDER,
                    ),
                    ast.App(ast.FunRef("view"), ast.UNIT_VALUE),
                ),
                RENDER,
            ),
        )
        system = System(
            Code([view, plain, page]), natives=natives, memo_render=True
        )
        system.run_to_stable()
        return system

    def test_same_natives_entries_survive(self):
        system = self.make_system(lambda services, s: s.upper())
        assert len(system._memo_store) == 2
        system.update(system.code)
        assert len(system._memo_store) == 2

    def test_rebound_native_drops_exactly_the_calling_entries(self):
        system = self.make_system(lambda services, s: s.upper())
        natives = NativeTable()
        natives.register(self.SIG, lambda services, s: s.lower())
        # Digests hash program code only — they cannot see host Python —
        # so rebinding an implementation invalidates every entry whose
        # producer can reach the native... and no others: ``plain``
        # never calls ``shout``, so its entry survives the rebind.
        system.update(system.code, natives=natives)
        assert len(system._memo_store) == 1
        system._invalidate()
        system.run_to_stable()
        assert system.last_render_stats["hits"] == 1
        assert system.last_render_stats["misses"] == 1
        assert "HELLO" not in render_html(system.display)
        assert "hello" in render_html(system.display)


class TestMetricCatalog:
    def test_update_counters_and_reuse_gauge(self):
        tracer = Tracer()
        session = gallery_session(tracer=tracer)
        session.replace_text('"gallery"', '"edited"')
        metrics = tracer.metrics()
        total = ROWS * COLS + ROWS
        # Outermost calls only: the row hits splice their cells.
        assert metrics["incremental.update_hits"] == ROWS
        assert metrics["incremental.update_misses"] == 0
        assert metrics["incremental.update_reuse_ratio"] == 1.0
        assert metrics["incremental.entries_carried"] == total
        assert metrics["incremental.replayed_boxes"] == ROWS + ROWS * COLS
        assert metrics["memo_hits"] == ROWS
        # Cold render misses + nothing else.
        assert metrics["memo_misses"] == total

    def test_reuse_ratio_zero_when_everything_invalidated(self):
        tracer = Tracer()
        session = gallery_session(tracer=tracer)
        session.replace_text('"["', '"<"')
        assert tracer.metrics()["incremental.update_reuse_ratio"] == 0.0


class TestServeShortCircuit:
    def make_host(self, **session_kwargs):
        from repro.serve.host import SessionHost

        session_kwargs.setdefault("memo_render", True)
        tracer = Tracer()
        host = SessionHost(
            pool_size=4,
            default_source=function_gallery_source(rows=ROWS, cols=COLS),
            tracer=tracer,
            session_kwargs=session_kwargs,
        )
        return host, tracer

    def test_fully_memoized_rerender_skips_html_build(self):
        host, tracer = self.make_host()
        token = host.create()
        html, generation, _ = host.render(token)
        # Appending an *unused* helper leaves every existing digest and
        # the page body untouched: the re-render is all hits and the
        # display fingerprint is unchanged, so the cached document is
        # served without rebuilding the HTML.
        result = host.edit_source(
            token,
            function_gallery_source(rows=ROWS, cols=COLS)
            + '\nfun unused(x : number)\n  boxed\n    post "" || x\n',
        )
        assert result.applied
        html_after, generation_after, modified = host.render(token)
        assert tracer.metrics()["incremental.html_short_circuits"] == 1
        assert generation_after == generation
        assert modified is False or html_after == html

    def test_header_edit_recomputes_html(self):
        host, tracer = self.make_host()
        token = host.create()
        host.render(token)
        result = host.edit_source(
            token,
            function_gallery_source(rows=ROWS, cols=COLS, title="edited"),
        )
        assert result.applied
        html, _generation, modified = host.render(token)
        assert modified and "edited" in html
        assert tracer.metrics()["incremental.html_short_circuits"] == 0
