"""Every example script must run cleanly (they are the documentation)."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=lambda path: path.stem
)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert len(output) > 200  # each example narrates what it shows


def test_examples_exist():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "mortgage_calculator",
        "live_ide_session",
        "shopping_list",
        "update_semantics_tour",
    } <= names
