"""Cross-module scenarios: reuse optimization end-to-end, faithful-machine
system runs, HTML round trips, hit-testing against live layouts."""

import pytest

from repro.apps.counter import SOURCE as COUNTER
from repro.apps.gallery import gallery_runtime, gallery_source
from repro.apps.mortgage import BASE_SOURCE, host_impls, mortgage_runtime
from repro.boxes.diff import tree_equal
from repro.core import ast
from repro.live.session import LiveSession
from repro.render.hittest import hit_test
from repro.render.html_backend import render_html
from repro.render.layout import LayoutEngine
from repro.stdlib.web import make_services
from repro.surface.compile import compile_source
from repro.system.runtime import Runtime


class TestReuseOptimizationEndToEnd:
    def test_observable_display_identical(self):
        """reuse_boxes=True never changes what the user sees."""
        compiled = compile_source(gallery_source(rows=4, cols=3))
        plain = Runtime(compiled.code, natives=compiled.natives).start()
        reusing = Runtime(
            compiled.code, natives=compiled.natives, reuse_boxes=True
        ).start()
        for runtime in (plain, reusing):
            runtime.tap_text("[2.2]")
        assert tree_equal(plain.display, reusing.display)

    def test_subtrees_shared_across_renders(self):
        compiled = compile_source(gallery_source(rows=4, cols=3))
        runtime = Runtime(
            compiled.code, natives=compiled.natives, reuse_boxes=True
        ).start()
        before = runtime.display
        runtime.tap_text("[3.1]")
        after = runtime.display
        shared = sum(
            1
            for _path, box in after.walk()
            if any(box is old for _p, old in before.walk())
        )
        assert shared > after.count_boxes() // 2

    def test_layout_cache_benefits(self):
        compiled = compile_source(gallery_source(rows=6, cols=4))
        runtime = Runtime(
            compiled.code, natives=compiled.natives, reuse_boxes=True
        ).start()
        engine = LayoutEngine()
        engine.layout(runtime.display)
        cold_misses = engine.cache_misses
        runtime.tap_text("[1.1]")
        engine.layout(runtime.display)
        assert engine.cache_misses < cold_misses


class TestFaithfulMachineSystemRuns:
    def test_mortgage_start_page_under_small_step(self):
        runtime = mortgage_runtime(latency=0.0, faithful=True)
        assert runtime.contains_text("House")
        assert len(runtime.global_value("listings").items) == 8

    def test_counter_interaction_under_small_step(self):
        compiled = compile_source(COUNTER)
        runtime = Runtime(
            compiled.code, natives=compiled.natives, faithful=True
        ).start()
        runtime.tap_text("count: 0")
        assert runtime.all_texts()[0] == "count: 1"


class TestBackendsAgainstRealApps:
    def test_mortgage_html_document(self):
        runtime = mortgage_runtime()
        html = render_html(runtime.display, title="listings")
        assert html.count("<div") > 8
        assert "data-ontap" in html

    def test_hit_test_finds_tappable_listing(self):
        runtime = mortgage_runtime()
        node = LayoutEngine().layout(runtime.display, width=44)
        listing = runtime.global_value("listings").items[0]
        label = "{}, {}".format(
            listing.items[0].value, listing.items[1].value
        )
        target = None
        for child in node.walk():
            for x, y, line in child.texts:
                if line == label:
                    target = (x, y)
        assert target is not None
        path = hit_test(node, *target)
        assert path is not None
        runtime.tap(path)  # bubbles to the entry's handler
        assert runtime.page_name() == "detail"


class TestLongSession:
    def test_many_interleaved_edits_and_interactions(self):
        session = LiveSession(COUNTER)
        for round_number in range(1, 6):
            session.tap_text(session.runtime.all_texts()[0])
            label = '"v{}: "'.format(round_number)
            previous = (
                '"count: "' if round_number == 1
                else '"v{}: "'.format(round_number - 1)
            )
            result = session.replace_text(previous, label)
            assert result.applied
        assert session.runtime.global_value("count") == ast.Num(5)
        assert session.runtime.all_texts()[0] == "v5: 5"
        # 5 taps + 5 updates, each with exactly one re-render.
        renders = [
            t for t in session.runtime.trace if t.rule == "RENDER"
        ]
        assert len(renders) == 11  # boot + 5 taps + 5 updates
