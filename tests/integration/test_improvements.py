"""Section 3.1 end-to-end: the programmer applies I1-I3 *live*.

This is the paper's demo, scripted: start the mortgage app, navigate to a
detail page, then — without ever restarting, re-downloading or leaving the
page — fix margins by direct manipulation (I1), reformat the balance
column (I2) and highlight every fifth row (I3), observing each change in
the live view.
"""

import pytest

from repro.apps.mortgage import BASE_SOURCE, _I2_NEW, _I2_OLD, _I3_NEW, _I3_OLD, host_impls
from repro.core import ast
from repro.live.session import LiveSession
from repro.stdlib.web import make_services


@pytest.fixture
def session():
    live = LiveSession(
        BASE_SOURCE, host_impls=host_impls(), services=make_services()
    )
    listing = live.runtime.global_value("listings").items[0]
    label = "{}, {}".format(listing.items[0].value, listing.items[1].value)
    live.tap_text(label)
    return live


def web_requests(session):
    return session.runtime.system.services.get("web").request_count


class TestScenario:
    def test_full_walkthrough(self, session):
        assert session.runtime.page_name() == "detail"
        downloads_before = web_requests(session)

        # --- I2: dollars-and-cents formatting -------------------------
        raw_balance = [
            t for t in session.runtime.all_texts() if "balance" in t
        ][0]
        assert "$" not in raw_balance  # the unformatted original
        result = session.edit_source(
            session.source.replace(_I2_OLD, _I2_NEW)
        )
        assert result.applied and result.report.clean
        formatted = [
            t for t in session.runtime.all_texts() if "balance" in t
        ][0]
        assert "$" in formatted and "." in formatted
        cents = formatted.rsplit(".", 1)[1]
        assert len(cents) == 2

        # --- I3: highlight every fifth row ------------------------------
        result = session.edit_source(
            session.source.replace(_I3_OLD, _I3_NEW)
        )
        assert result.applied
        highlighted = session.runtime.find_boxes(
            lambda box: box.get_attr("background") == ast.Str("light blue")
        )
        assert len(highlighted) == 6

        # --- I1: margin via direct manipulation -----------------------------
        session.back()
        header_path = session.runtime.find_text("House")
        selection = session.select_box(header_path)
        edit, result = session.manipulate(
            selection.anchor_path, "margin", 1
        )
        assert result.applied
        assert "box.margin := 1" in session.source

        # --- the whole point: nothing restarted -----------------------------
        assert web_requests(session) == downloads_before
        assert session.runtime.global_value("term") == ast.Num(30)

    def test_page_context_survives_each_edit(self, session):
        """Step 5 of the conventional cycle (re-navigating) never happens."""
        for old, new in ((_I2_OLD, _I2_NEW), (_I3_OLD, _I3_NEW)):
            session.edit_source(session.source.replace(old, new))
            assert session.runtime.page_name() == "detail"

    def test_user_state_interleaves_with_edits(self, session):
        # The programmer sets the term to 15 by *using* the app...
        session.edit_box(session.runtime.find_text("30"), "15")
        # ...then live-edits the code...
        session.edit_source(session.source.replace(_I2_OLD, _I2_NEW))
        # ...and the user-entered model state shows through the new code.
        assert session.runtime.global_value("term") == ast.Num(15)
        balances = [
            t for t in session.runtime.all_texts() if "balance" in t
        ]
        assert len(balances) == 15

    def test_navigation_finds_the_balance_statement(self, session):
        """Fig. 2's flow: tap the balance cell, get the boxed statement."""
        balance_path = [
            path
            for path, box in session.runtime.display.walk()
            for leaf in box.leaves()
            if "balance" in str(leaf)
        ][0]
        selection = session.select_box(balance_path)
        assert selection is not None
        covered = session.source.split("\n")[
            selection.span.start.line - 1 : selection.span.end.line
        ]
        assert any("balance" in line for line in covered)
        # The statement sits in a loop: one selection, thirty boxes.
        assert len(selection.paths) == 30
