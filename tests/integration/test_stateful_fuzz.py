"""Stateful fuzzing: random interleavings of using and editing an app.

A hypothesis rule-based state machine plays both roles of the paper's
story at once — the *user* (taps, back button, text edits) and the
*programmer* (live source edits, good and broken, plus direct
manipulation).  After every action the Section 4.2 invariants must hold
and the model must match a Python-side oracle of the counter's value.
"""

import pytest
from hypothesis import HealthCheck, settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core import ast
from repro.live.session import LiveSession
from repro.metatheory.wellformed import check_invariants

SOURCE_TEMPLATE = '''\
global count : number = 0

page start()
  render
    boxed
      post "{label}" || count
      on tap do
        count := count + {step}
    boxed
      post "reset"
      on tap do
        count := 0
    boxed
      post "deeper"
      on tap do
        push detail(count)

page detail(snapshot : number)
  render
    post "snapshot: " || snapshot
    boxed
      post "back"
      on tap do
        pop
'''

LABELS = ("count: ", "n = ", "value->")
STEPS = (1, 2, 5)


class LiveAppMachine(RuleBasedStateMachine):
    @initialize()
    def boot(self):
        self.label = "count: "
        self.step = 1
        self.expected = 0
        self.session = LiveSession(
            SOURCE_TEMPLATE.format(label=self.label, step=self.step)
        )

    # ---- the user ---------------------------------------------------------

    def _on_start_page(self):
        return self.session.runtime.page_name() == "start"

    @rule()
    def tap_counter(self):
        if self._on_start_page():
            shown = "{}{}".format(self.label, _fmt(self.expected))
            self.session.tap_text(shown)
            self.expected += self.step

    @rule()
    def tap_reset(self):
        if self._on_start_page():
            self.session.tap_text("reset")
            self.expected = 0

    @rule()
    def go_deeper(self):
        if self._on_start_page():
            self.session.tap_text("deeper")

    @rule()
    def press_back(self):
        self.session.back()

    # ---- the programmer ---------------------------------------------------

    @rule(label=st.sampled_from(LABELS))
    def edit_label(self, label):
        result = self.session.edit_source(
            SOURCE_TEMPLATE.format(label=label, step=self.step)
        )
        assert result.applied
        self.label = label

    @rule(step=st.sampled_from(STEPS))
    def edit_step(self, step):
        result = self.session.edit_source(
            SOURCE_TEMPLATE.format(label=self.label, step=step)
        )
        assert result.applied
        self.step = step

    @rule()
    def broken_edit_is_harmless(self):
        result = self.session.edit_source("page start(\n  oops")
        assert not result.applied
        # Restore the buffer so later textual edits start from good code.
        self.session.edit_source(
            SOURCE_TEMPLATE.format(label=self.label, step=self.step)
        )

    # ---- invariants -------------------------------------------------------

    @invariant()
    def system_invariants_hold(self):
        if not hasattr(self, "session"):
            return
        check_invariants(self.session.runtime.system)

    @invariant()
    def model_matches_oracle(self):
        if not hasattr(self, "session"):
            return
        assert self.session.runtime.global_value("count") == ast.Num(
            self.expected
        )

    @invariant()
    def display_matches_model_on_start_page(self):
        if not hasattr(self, "session"):
            return
        if self._on_start_page():
            assert self.session.runtime.contains_text(
                "{}{}".format(self.label, _fmt(self.expected))
            )


def _fmt(number):
    return str(int(number)) if float(number).is_integer() else repr(number)


LiveAppMachine.TestCase.settings = settings(
    max_examples=12,
    stateful_step_count=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TestLiveAppMachine = LiveAppMachine.TestCase
