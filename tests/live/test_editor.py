"""The code buffer used by direct manipulation."""

import pytest

from repro.core.errors import ReproError
from repro.live.editor import CodeBuffer
from repro.surface.span import Pos, Span


def span(line1, col1, line2, col2):
    return Span(Pos(line1, col1, 0), Pos(line2, col2, 0))


class TestLines:
    def test_round_trip(self):
        source = "a\nb\nc"
        assert CodeBuffer(source).source == source

    def test_line_access_one_based(self):
        buffer = CodeBuffer("first\nsecond")
        assert buffer.line(1) == "first"
        assert buffer.line(2) == "second"
        with pytest.raises(ReproError):
            buffer.line(3)

    def test_replace_line(self):
        buffer = CodeBuffer("a\nb\nc")
        buffer.replace_line(2, "B")
        assert buffer.source == "a\nB\nc"

    def test_insert_line(self):
        buffer = CodeBuffer("a\nc")
        buffer.insert_line(2, "b")
        assert buffer.source == "a\nb\nc"

    def test_insert_at_end(self):
        buffer = CodeBuffer("a")
        buffer.insert_line(2, "b")
        assert buffer.source == "a\nb"

    def test_insert_out_of_range(self):
        with pytest.raises(ReproError):
            CodeBuffer("a").insert_line(5, "x")

    def test_line_count(self):
        assert CodeBuffer("a\nb").line_count() == 2


class TestSpans:
    def test_replace_within_line(self):
        buffer = CodeBuffer("box.margin := 1")
        buffer.replace_span(span(1, 14, 1, 15), "42")
        assert buffer.source == "box.margin := 42"

    def test_replace_across_lines(self):
        buffer = CodeBuffer("aXX\nYYb")
        buffer.replace_span(span(1, 1, 2, 2), "-")
        assert buffer.source == "a-b"

    def test_replace_with_multiline_text(self):
        buffer = CodeBuffer("ab")
        buffer.replace_span(span(1, 1, 1, 1), "\n")
        assert buffer.source == "a\nb"


class TestFindOnce:
    def test_unique_hit(self):
        buffer = CodeBuffer("a\n  needle here\nb")
        assert buffer.find_once("needle") == (2, 2)

    def test_absent(self):
        with pytest.raises(ReproError):
            CodeBuffer("a").find_once("needle")

    def test_ambiguous(self):
        with pytest.raises(ReproError):
            CodeBuffer("x\nx").find_once("x")
