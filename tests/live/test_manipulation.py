"""Direct manipulation: attribute edits become code edits."""

import pytest

from repro.core import ast
from repro.core.errors import ReproError
from repro.live.manipulation import format_attr_value, surface_attr_name
from repro.live.session import LiveSession

SOURCE = """\
page start()
  render
    boxed
      box.margin := 1
      post "styled"
    boxed
      post "plain"
"""


@pytest.fixture
def session():
    return LiveSession(SOURCE)


class TestValueFormatting:
    def test_numbers(self):
        assert format_attr_value("margin", 2) == "2"
        assert format_attr_value("font size", 1.5) == "1.5"

    def test_strings_quoted(self):
        assert format_attr_value("background", "light blue") == '"light blue"'

    def test_type_mismatches_rejected(self):
        with pytest.raises(ReproError):
            format_attr_value("margin", "wide")
        with pytest.raises(ReproError):
            format_attr_value("background", 3)

    def test_surface_spelling(self):
        assert surface_attr_name("font size") == "font_size"
        assert surface_attr_name("margin") == "margin"


class TestManipulate:
    def test_insert_missing_attribute(self, session):
        """The I1 flow: pick a box, set margin, code gains the line."""
        path = session.runtime.find_text("plain")
        edit, result = session.manipulate(path, "margin", 2)
        assert result.applied
        assert edit.inserted
        assert "box.margin := 2" in session.source
        # And the live view reflects it: the box moved right/down.
        moved = session.runtime.find_text("plain")
        assert moved is not None

    def test_rewrite_existing_attribute(self, session):
        path = session.runtime.find_text("styled")
        edit, result = session.manipulate(path, "margin", 3)
        assert result.applied
        assert not edit.inserted
        assert "box.margin := 3" in session.source
        assert "box.margin := 1" not in session.source

    def test_background_string_attribute(self, session):
        path = session.runtime.find_text("plain")
        _edit, result = session.manipulate(
            path, "background", "light blue"
        )
        assert result.applied
        assert 'box.background := "light blue"' in session.source
        box = session.runtime.find_boxes(
            lambda b: b.get_attr("background") == ast.Str("light blue")
        )
        assert box

    def test_font_size_spelled_with_underscore(self, session):
        path = session.runtime.find_text("plain")
        _edit, result = session.manipulate(path, "font size", 2)
        assert result.applied
        assert "box.font_size := 2" in session.source

    def test_handlers_not_manipulable(self, session):
        path = session.runtime.find_text("plain")
        with pytest.raises(ReproError):
            session.manipulate(path, "ontap", "boom")

    def test_unknown_attribute(self, session):
        path = session.runtime.find_text("plain")
        with pytest.raises(ReproError):
            session.manipulate(path, "zorp", 1)

    def test_root_content_not_manipulable(self):
        session = LiveSession('page start()\n  render\n    post "x"\n')
        with pytest.raises(ReproError):
            session.manipulate((), "margin", 1)

    def test_repeated_manipulation_converges(self, session):
        """Drag-like interaction: many updates to the same attribute
        rewrite one line rather than accumulating."""
        path = session.runtime.find_text("plain")
        for value in (1, 2, 3):
            path = session.runtime.find_text("plain")
            session.manipulate(path, "margin", value)
        assert session.source.count("box.margin :=") == 2  # styled + plain
        assert "box.margin := 3" in session.source
