"""UI-code navigation (Fig. 2), both directions."""

import pytest

from repro.live.navigation import box_to_code, code_to_boxes, selection_chain
from repro.live.session import LiveSession

SOURCE = """\
page start()
  render
    boxed
      post "header"
    for i = 1 to 3 do
      boxed
        post "row " || i
        boxed
          post "cell"
"""


@pytest.fixture
def session():
    return LiveSession(SOURCE)


class TestBoxToCode:
    def test_tap_selects_creating_statement(self, session):
        path = session.runtime.find_text("header")
        selection = session.select_box(path)
        assert selection.box_id == 0
        assert selection.span.start.line == 3
        assert selection.paths == (path,)

    def test_loop_boxes_collectively_selected(self, session):
        """'a selected boxed statement appearing inside a loop corresponds
        to multiple boxes ... collectively selected' (Fig. 2)."""
        path = session.runtime.find_text("row 2")
        selection = session.select_box(path)
        assert selection.box_id == 1
        assert len(selection.paths) == 3
        assert selection.multiple
        assert selection.anchor_path == path

    def test_content_in_implicit_root_has_no_selection(self):
        root_only = LiveSession(
            'page start()\n  render\n    post "rootish"\n'
        )
        assert root_only.select_box(()) is None


class TestCodeToBoxes:
    def test_line_selects_all_boxes(self, session):
        selection = session.select_code(7)  # inside the loop's boxed
        assert selection.box_id == 1
        assert len(selection.paths) == 3

    def test_inner_statement_wins(self, session):
        selection = session.select_code(9)  # the nested 'cell' boxed
        assert selection.box_id == 2

    def test_line_outside_any_boxed(self, session):
        assert session.select_code(1) is None

    def test_round_trip(self, session):
        """live → code → live returns to the same (collective) selection."""
        path = session.runtime.find_text("cell")
        to_code = session.select_box(path)
        back = session.select_code(to_code.span.start.line)
        assert path in back.paths
        assert back.box_id == to_code.box_id


class TestSelectionChain:
    def test_nested_selection_mode(self, session):
        """Section 5: tapping repeatedly selects enclosing boxes."""
        path = session.runtime.find_text("cell")
        chain = session.selection_chain(path)
        assert [sel.box_id for sel in chain] == [2, 1]


class TestAfterEdits:
    def test_navigation_tracks_the_new_program(self, session):
        session.replace_text('post "header"', 'post "HEADER"')
        path = session.runtime.find_text("HEADER")
        selection = session.select_box(path)
        assert selection is not None
        lines = session.source.split("\n")
        covered = "\n".join(
            lines[selection.span.start.line - 1 : selection.span.end.line]
        )
        assert "HEADER" in covered
