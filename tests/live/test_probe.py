"""Probes: off-to-the-side execution against the live model (§5 futures)."""

import pytest

from repro.core import ast
from repro.core.errors import ReproError, TypeProblem
from repro.live.session import LiveSession

SOURCE = """\
record point
  x : number
  y : number

global origin : point = point(0, 0)
global hits : number = 0

fun dist(p : point) : number
  return sqrt(p.x * p.x + p.y * p.y)

fun bump()
  hits := hits + 1
  pop

fun chart(n : number)
  for i = 1 to n do
    boxed
      post "bar " || i

page start()
  render
    post hits
"""


@pytest.fixture
def session():
    return LiveSession(SOURCE)


class TestFunctionProbes:
    def test_pure_probe_returns_value(self, session):
        result = session.probe("dist", (3.0, 4.0))
        assert result.python_value == 5.0
        assert result.store_writes == {}
        assert result.tree is None

    def test_render_probe_captures_boxes(self, session):
        """'boxed statements to produce debugging output' — captured."""
        result = session.probe("chart", 3)
        assert result.tree is not None
        assert result.tree.count_boxes() == 4  # root + 3 bars
        shot = result.screenshot(width=20)
        assert "bar 2" in shot
        assert "boxes built: 4" in result.describe()

    def test_state_probe_is_transactional(self, session):
        """Handlers/init become debuggable: effects observed, not kept."""
        result = session.probe("bump")
        assert "hits" in result.store_writes
        old, new = result.store_writes["hits"]
        assert old is None and new == ast.Num(1)
        assert len(result.events) == 1  # the pop it would enqueue
        # The running program was not touched:
        assert session.runtime.global_value("hits") == ast.Num(0)
        assert session.runtime.page_name() == "start"

    def test_arity_and_name_checked(self, session):
        with pytest.raises(ReproError):
            session.probe("dist")
        with pytest.raises(ReproError):
            session.probe("ghost")


class TestExpressionProbes:
    def test_reads_live_globals(self, session):
        session.probe_expr("hits")  # works at 0
        session.runtime.system.state.store.assign("hits", ast.Num(9))
        result = session.probe_expr("hits + 1")
        assert result.python_value == 10.0

    def test_calls_functions_and_records(self, session):
        result = session.probe_expr("dist(point(6, 8))")
        assert result.python_value == 10.0

    def test_builtin_calls(self, session):
        assert session.probe_expr("format(1.5, 2)").python_value == "1.50"

    def test_effect_inference_picks_state_when_needed(self, session):
        result = session.probe_expr("dist(origin)")
        assert str(result.effect) == "p"

    def test_type_errors_reported(self, session):
        with pytest.raises(TypeProblem):
            session.probe_expr('1 + "two"')

    def test_trailing_garbage_rejected(self, session):
        with pytest.raises(ReproError):
            session.probe_expr("1 + 2 extra")
