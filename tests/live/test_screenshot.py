"""The Fig. 2 split-screen text rendering."""

import pytest

from repro.apps.counter import SOURCE as COUNTER
from repro.live.screenshot import code_pane, side_by_side
from repro.live.session import LiveSession


@pytest.fixture
def session():
    return LiveSession(COUNTER)


class TestCodePane:
    def test_numbered_lines(self):
        pane = code_pane("alpha\nbeta")
        assert "   1 | alpha" in pane
        assert "   2 | beta" in pane

    def test_selection_markers(self, session):
        selection = session.select_code(5)
        pane = code_pane(session.source, selection=selection)
        marked = [
            line for line in pane.split("\n") if line.startswith(">")
        ]
        assert marked
        assert all(
            selection.span.start.line
            <= int(line[1:6])
            <= selection.span.end.line
            for line in marked
        )

    def test_problem_markers(self, session):
        session.edit_source(
            COUNTER.replace("count + 1", 'count + "x"')
        )
        pane = code_pane(session.source, problems=session.problems)
        assert any(line.startswith("!") for line in pane.split("\n"))

    def test_window_restricts_lines(self):
        pane = code_pane("a\nb\nc\nd", window=range(2, 4))
        assert "a" not in pane and "d" not in pane
        assert "b" in pane and "c" in pane


class TestSideBySide:
    def test_panes_joined_row_by_row(self, session):
        view = session.side_by_side(width=20)
        rows = view.split("\n")
        assert all("║" in row for row in rows)
        # The gutter is aligned: every row breaks at the same column.
        columns = {row.index("║") for row in rows}
        assert len(columns) == 1

    def test_selection_appears_in_both_panes(self, session):
        path = session.runtime.find_text("count: 0")
        selection = session.select_box(path)
        view = session.side_by_side(width=24, selection=selection)
        assert "#" in view   # live-pane frame
        assert ">" in view   # code-pane marker
