"""The live session: continuous compile + UPDATE (Fig. 2's live editing)."""

import pytest

from repro.apps.counter import SOURCE as COUNTER
from repro.core import ast
from repro.core.errors import ReproError
from repro.live.session import LiveSession


@pytest.fixture
def session():
    return LiveSession(COUNTER)


class TestLiveEditing:
    def test_edit_applies_and_rerenders(self, session):
        session.tap_text("count: 0")
        result = session.replace_text('"count: "', '"n = "')
        assert result.applied
        assert session.runtime.all_texts()[0] == "n = 1"

    def test_model_survives_edits(self, session):
        session.tap_text("count: 0")
        session.tap_text("count: 1")
        session.replace_text("count + 1", "count + 10")
        session.tap_text("count: 2")
        assert session.runtime.global_value("count") == ast.Num(12)

    def test_broken_edit_rejected_but_buffer_kept(self, session):
        broken = session.source.replace("count + 1", "count +")
        result = session.edit_source(broken)
        assert not result.applied
        assert result.problems
        # The buffer holds the programmer's (broken) text...
        assert session.source == broken
        # ...while the program keeps running the last good code.
        session.tap_text("count: 0")
        assert session.runtime.all_texts()[0] == "count: 1"

    def test_type_error_rejected_with_diagnostics(self, session):
        broken = session.source.replace(
            "post \"count: \" || count", "count := 5"
        )
        result = session.edit_source(broken)
        assert not result.applied
        assert session.problems

    def test_fixing_the_buffer_recovers(self, session):
        session.edit_source(session.source + "\nbroken")
        assert session.problems
        result = session.edit_source(COUNTER)
        assert result.applied
        assert session.problems == ()

    def test_edit_log_records_everything(self, session):
        session.edit_source(COUNTER + "\n")
        session.edit_source("broken(")
        assert [r.status for r in session.edit_log] == [
            "applied", "rejected",
        ]

    def test_replace_text_requires_unique_pattern(self, session):
        with pytest.raises(ReproError):
            session.replace_text("count", "n")  # occurs many times

    def test_elapsed_time_recorded(self, session):
        result = session.edit_source(COUNTER + "\n")
        assert result.elapsed > 0


class TestInteractionPassthrough:
    def test_tap_edit_back_chain(self, session):
        assert session.tap_text("count: 0") is session
        assert session.back() is session

    def test_screenshot(self, session):
        shot = session.screenshot(width=24)
        assert "count: 0" in shot

    def test_side_by_side_contains_both_panes(self, session):
        view = session.side_by_side(width=20)
        assert "║" in view
        assert "count: 0" in view          # live pane
        assert "page start()" in view      # code pane

    def test_side_by_side_marks_problems(self, session):
        session.edit_source(
            COUNTER.replace("count + 1", 'count + "x"')
        )
        view = session.side_by_side(width=20)
        assert "!" in view
