"""Undo/redo over accepted program versions (undo is an UPDATE too)."""

import pytest

from repro.apps.counter import SOURCE as V1
from repro.core import ast
from repro.core.errors import ReproError
from repro.live.session import LiveSession

V2 = V1.replace('"count: "', '"v2: "')
V3 = V2.replace('"v2: "', '"v3: "')


@pytest.fixture
def session():
    return LiveSession(V1)


class TestUndoRedo:
    def test_nothing_to_undo_initially(self, session):
        assert not session.can_undo()
        with pytest.raises(ReproError):
            session.undo()
        with pytest.raises(ReproError):
            session.redo()

    def test_undo_restores_previous_program(self, session):
        session.edit_source(V2)
        result = session.undo()
        assert result.applied
        assert session.source == V1
        assert session.runtime.all_texts()[0] == "count: 0"

    def test_redo_after_undo(self, session):
        session.edit_source(V2)
        session.undo()
        result = session.redo()
        assert result.applied
        assert session.source == V2
        assert session.runtime.all_texts()[0] == "v2: 0"

    def test_multi_step_undo_and_redo(self, session):
        session.edit_source(V2)
        session.edit_source(V3)
        session.undo()
        session.undo()
        assert session.source == V1
        session.redo()
        assert session.source == V2
        session.redo()
        assert session.source == V3
        assert not session.can_redo()

    def test_new_edit_clears_redo(self, session):
        session.edit_source(V2)
        session.undo()
        session.edit_source(V3)
        assert not session.can_redo()

    def test_rejected_edits_not_in_history(self, session):
        session.edit_source("broken(")
        assert not session.can_undo()
        session.edit_source(V2)
        session.undo()
        assert session.source == V1

    def test_undo_is_an_update_state_survives(self, session):
        """Undo rolls back CODE, never the model — like any live edit."""
        session.edit_source(V2)
        session.tap_text("v2: 0")
        session.tap_text("v2: 1")
        session.undo()
        assert session.runtime.global_value("count") == ast.Num(2)
        assert session.runtime.all_texts()[0] == "count: 2"

    def test_identical_resubmission_not_duplicated(self, session):
        session.edit_source(V1)  # no-op edit
        assert not session.can_undo()
