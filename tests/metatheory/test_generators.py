"""The random-program generators themselves: everything they produce must
be well-typed by construction (otherwise the property tests are vacuous)."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import ast
from repro.core.effects import PURE, RENDER, STATE
from repro.core.types import NUMBER, is_subtype
from repro.metatheory.generators import (
    function_free_types,
    programs,
    typed_expressions,
    values_of,
)
from repro.typing.checker import check
from repro.typing.program import code_problems

_SETTINGS = settings(
    max_examples=60, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestTypeGenerator:
    @_SETTINGS
    @given(type_=function_free_types())
    def test_types_are_function_free(self, type_):
        assert type_.is_function_free()


class TestValueGenerator:
    @_SETTINGS
    @given(value=function_free_types().flatmap(values_of))
    def test_values_are_values(self, value):
        assert value.is_value()
        assert ast.is_closed(value)


class TestProgramGenerator:
    @_SETTINGS
    @given(code=programs())
    def test_programs_well_typed(self, code):
        assert code_problems(code) == []

    @_SETTINGS
    @given(code=programs())
    def test_programs_have_start_page(self, code):
        assert code.page("start") is not None


class TestExpressionGenerator:
    @pytest.mark.parametrize("effect", [PURE, STATE, RENDER])
    def test_expressions_check_at_their_type(self, effect):
        from hypothesis import find

        # A handful of found examples per effect; full fuzzing happens in
        # the preservation/progress suites.
        for _ in range(3):
            code, expr, type_ = find(
                typed_expressions(effect=effect, depth=3), lambda _x: True
            )
            actual = check(code, expr, effect=effect)
            assert is_subtype(actual, type_)

    @_SETTINGS
    @given(case=typed_expressions(effect=RENDER, depth=3))
    def test_render_expressions_type_under_render(self, case):
        code, expr, type_ = case
        actual = check(code, expr, effect=RENDER)
        assert is_subtype(actual, type_)
