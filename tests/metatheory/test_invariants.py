"""System-level invariants (Section 4.2) hold after EVERY transition —
including across random interaction sequences and random code updates."""

import pytest
from hypothesis import HealthCheck, given, settings

from helpers import counter_core_code
from repro.core import ast
from repro.core.errors import SystemError_, UpdateRejected
from repro.metatheory.generators import programs
from repro.metatheory.wellformed import (
    InvariantViolation,
    check_invariants,
    no_stale_code,
)
from repro.system.transitions import System
from repro.typing.state import system_problems

_SETTINGS = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def checked_step_to_stable(system):
    while True:
        choice = system.step()
        check_invariants(system)
        if choice is None:
            return


class TestScriptedScenario:
    def test_counter_lifecycle_invariant_preserving(self):
        system = System(counter_core_code())
        checked_step_to_stable(system)
        for _round in range(3):
            system.tap((0,))
            check_invariants(system)
            checked_step_to_stable(system)
        system.update(counter_core_code("n: "))
        check_invariants(system)
        assert no_stale_code(system)
        checked_step_to_stable(system)

    def test_violation_detected(self):
        """The checker is not vacuous: corrupt a state, see it flagged."""
        from repro.core.effects import PURE
        from repro.core.types import NUMBER

        system = System(counter_core_code())
        system.run_to_stable()
        system.state.store.assign(
            "count", ast.Lam("x", NUMBER, ast.Var("x"), PURE)
        )
        with pytest.raises(InvariantViolation):
            check_invariants(system)


class TestRandomizedPrograms:
    @_SETTINGS
    @given(code=programs())
    def test_boot_preserves_invariants(self, code):
        system = System(code)
        checked_step_to_stable(system)
        assert system.state.is_stable()
        assert system_problems(system.state) == []

    @_SETTINGS
    @given(old=programs(), new=programs())
    def test_random_updates_preserve_invariants(self, old, new):
        """UPDATE between two UNRELATED random programs: the fix-up must
        always land in a well-typed state (Fig. 12's purpose)."""
        system = System(old)
        checked_step_to_stable(system)
        system.update(new)
        check_invariants(system)
        assert no_stale_code(system)
        checked_step_to_stable(system)
        assert system_problems(system.state) == []

    @_SETTINGS
    @given(code=programs())
    def test_back_button_storm(self, code):
        system = System(code)
        checked_step_to_stable(system)
        for _ in range(3):
            system.back()
            checked_step_to_stable(system)
        assert system.state.is_stable()
