"""Preservation (Section 4.3), executed: every small step keeps the type."""

import pytest
from hypothesis import HealthCheck, given, settings

from helpers import page_code, seq
from repro.core import ast
from repro.core.defs import GlobalDef
from repro.core.effects import PURE, RENDER, STATE
from repro.core.types import NUMBER, UNIT
from repro.boxes.tree import make_root
from repro.metatheory.generators import typed_expressions
from repro.metatheory.preservation import (
    PreservationViolation,
    check_preserving_run,
)
from repro.system.events import EventQueue
from repro.system.state import Store

CODE = page_code(
    ast.UNIT_VALUE, globals_=[GlobalDef("g", NUMBER, ast.Num(0))]
)

_SETTINGS = settings(
    max_examples=60, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestHandWritten:
    def test_pure_arithmetic(self):
        report = check_preserving_run(
            CODE,
            ast.Prim("add", (ast.Num(1), ast.Prim("mul", (ast.Num(2),
                                                          ast.Num(3))))),
            PURE,
            Store(),
        )
        assert report.final_value == ast.Num(7)
        assert report.steps == 2

    def test_state_sequence_keeps_store_typed(self):
        expr = seq(
            STATE,
            ast.GlobalWrite("g", ast.Num(1)),
            ast.GlobalWrite(
                "g", ast.Prim("add", (ast.GlobalRead("g"), ast.Num(1)))
            ),
        )
        store, queue = Store(), EventQueue()
        report = check_preserving_run(CODE, expr, STATE, store, queue)
        assert store.lookup("g") == ast.Num(2)
        assert report.steps > 4

    def test_render_sequence(self):
        box = make_root()
        expr = seq(
            RENDER,
            ast.Post(ast.GlobalRead("g")),
            ast.Boxed(ast.Post(ast.Num(1)), box_id=1),
        )
        check_preserving_run(CODE, expr, RENDER, Store(), box=box)
        assert box.count_boxes() == 2

    def test_subtyping_sharpening_allowed(self):
        """Taking an if-branch may sharpen a function effect (s → p)."""
        pure_thunk = ast.Lam("u", UNIT, ast.UNIT_VALUE, PURE)
        state_thunk = ast.Lam("u", UNIT, ast.Pop(), STATE)
        expr = ast.App(
            ast.If(ast.Num(1), pure_thunk, state_thunk), ast.UNIT_VALUE
        )
        report = check_preserving_run(
            CODE, expr, STATE, Store(), EventQueue()
        )
        assert str(report.types_seen[0]) == "()"


class TestRandomized:
    @_SETTINGS
    @given(case=typed_expressions(effect=PURE, depth=4))
    def test_pure_expressions_preserve(self, case):
        code, expr, type_ = case
        report = check_preserving_run(code, expr, PURE, Store())
        assert report.initial_type == type_ or report.initial_type is not None

    @_SETTINGS
    @given(case=typed_expressions(effect=STATE, depth=4))
    def test_state_expressions_preserve(self, case):
        code, expr, _type = case
        check_preserving_run(code, expr, STATE, Store(), EventQueue())

    @_SETTINGS
    @given(case=typed_expressions(effect=RENDER, depth=4))
    def test_render_expressions_preserve(self, case):
        code, expr, _type = case
        check_preserving_run(code, expr, RENDER, Store(), box=make_root())
