"""Progress (Section 4.3), executed: well-typed non-values always step."""

import pytest
from hypothesis import HealthCheck, given, settings

from helpers import page_code
from repro.boxes.tree import make_root
from repro.core import ast
from repro.core.defs import GlobalDef
from repro.core.effects import PURE, RENDER, STATE
from repro.core.types import NUMBER
from repro.metatheory.generators import typed_expressions
from repro.metatheory.progress import (
    FAULT,
    STEPS,
    STUCK,
    VALUE,
    ProgressViolation,
    check_progress_run,
    classify,
)
from repro.system.events import EventQueue
from repro.system.state import Store

CODE = page_code(
    ast.UNIT_VALUE, globals_=[GlobalDef("g", NUMBER, ast.Num(0))]
)

_SETTINGS = settings(
    max_examples=60, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestClassification:
    def test_values(self):
        assert classify(CODE, ast.Num(1), PURE, Store()) == VALUE

    def test_steppable(self):
        expr = ast.Prim("add", (ast.Num(1), ast.Num(2)))
        assert classify(CODE, expr, PURE, Store()) == STEPS

    def test_ill_typed_is_stuck(self):
        """Progress only holds for WELL-TYPED terms; the traps are real."""
        assert classify(
            CODE, ast.GlobalWrite("g", ast.Num(1)), RENDER, Store(),
            box=make_root(),
        ) == STUCK
        assert classify(
            CODE, ast.Post(ast.Num(1)), STATE, Store(), EventQueue()
        ) == STUCK
        assert classify(CODE, ast.FunRef("ghost"), PURE, Store()) == STUCK

    def test_partial_prims_fault_not_stuck(self):
        expr = ast.Prim("div", (ast.Num(1), ast.Num(0)))
        assert classify(CODE, expr, PURE, Store()) == FAULT


class TestRuns:
    def test_terminating_run(self):
        kind, value = check_progress_run(
            CODE, ast.Prim("mul", (ast.Num(6), ast.Num(7))), PURE, Store()
        )
        assert kind == VALUE and value == ast.Num(42)

    def test_fault_reported_as_fault(self):
        kind, fault = check_progress_run(
            CODE,
            ast.Prim("add", (ast.Num(1),
                             ast.Prim("div", (ast.Num(1), ast.Num(0))))),
            PURE,
            Store(),
        )
        assert kind == FAULT
        assert "division" in str(fault)

    def test_stuckness_raises_violation(self):
        with pytest.raises(ProgressViolation):
            check_progress_run(
                CODE, ast.Post(ast.Num(1)), PURE, Store()
            )


class TestRandomized:
    @_SETTINGS
    @given(case=typed_expressions(effect=PURE, depth=4))
    def test_pure_progress(self, case):
        code, expr, _type = case
        kind, _ = check_progress_run(code, expr, PURE, Store())
        assert kind == VALUE  # generators avoid partial prims

    @_SETTINGS
    @given(case=typed_expressions(effect=STATE, depth=4))
    def test_state_progress(self, case):
        code, expr, _type = case
        kind, _ = check_progress_run(
            code, expr, STATE, Store(), EventQueue()
        )
        assert kind == VALUE

    @_SETTINGS
    @given(case=typed_expressions(effect=RENDER, depth=4))
    def test_render_progress(self, case):
        code, expr, _type = case
        kind, _ = check_progress_run(
            code, expr, RENDER, Store(), box=make_root()
        )
        assert kind == VALUE
