"""The paper's central semantic guarantee, as properties:

    "to guarantee that the view is a well-defined function of the model"

Concretely: rendering is *deterministic* (same code + same store → same
box tree), *store-preserving* (render code cannot change the model), and
*queue-preserving* (render cannot navigate).  Checked on the example apps
and on randomized well-typed programs.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from helpers import counter_core_code
from repro.boxes.diff import tree_equal
from repro.core import ast
from repro.metatheory.generators import programs
from repro.system.transitions import System

_SETTINGS = settings(
    max_examples=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def render_twice(system):
    system.state.invalidate_display()
    system.render()
    first = system.state.display
    store_before = system.state.store.copy()
    system.state.invalidate_display()
    system.render()
    second = system.state.display
    return first, second, store_before


class TestOnExamples:
    def test_counter_view_is_a_function_of_the_model(self):
        system = System(counter_core_code())
        system.run_to_stable()
        first, second, store_before = render_twice(system)
        assert tree_equal(first, second)
        assert system.state.store == store_before

    def test_mortgage_detail_renders_deterministically(self):
        from repro.apps.mortgage import mortgage_runtime

        runtime = mortgage_runtime(latency=0.0)
        listing = runtime.global_value("listings").items[0]
        runtime.tap_text(
            "{}, {}".format(listing.items[0].value, listing.items[1].value)
        )
        first, second, _ = render_twice(runtime.system)
        assert tree_equal(first, second)

    def test_model_change_changes_the_view(self):
        """The function is *of the model*: change the model, the view
        follows (without any view-update code)."""
        system = System(counter_core_code())
        system.run_to_stable()
        before = system.state.display
        system.state.store.assign("count", ast.Num(41))
        system.state.invalidate_display()
        system.render()
        assert not tree_equal(before, system.state.display)


class TestRandomized:
    @_SETTINGS
    @given(code=programs())
    def test_render_deterministic_and_model_preserving(self, code):
        system = System(code)
        system.run_to_stable()
        first, second, store_before = render_twice(system)
        assert tree_equal(first, second)
        assert system.state.store == store_before
        assert system.state.queue.is_empty()

    @_SETTINGS
    @given(code=programs())
    def test_render_agnostic_to_display_history(self, code):
        """Rendering after arbitrary invalidations yields the same view —
        the display carries no hidden state."""
        system = System(code)
        system.run_to_stable()
        reference = system.state.display
        for _ in range(3):
            system.state.invalidate_display()
        system.render()
        assert tree_equal(reference, system.state.display)
