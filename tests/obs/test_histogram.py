"""The mergeable histogram primitive (``repro.obs.histo``).

The cluster's percentile substrate must hold three promises: quantile
estimates stay within the documented ~19% bucket-width bound, merging
is associative/commutative bucket-wise (so fleet aggregation order
never matters), and the ``NullTracer`` hot path allocates nothing.
"""

import math
import tracemalloc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Tracer
from repro.obs.histo import (
    BUCKET_BOUNDS,
    BUCKET_GROWTH,
    BUCKET_SCHEMA,
    Histogram,
    NullHistogram,
    percentile,
)
from repro.obs.trace import NULL_TRACER, NullTracer


def build(values):
    histogram = Histogram()
    for value in values:
        histogram.observe(value)
    return histogram


#: Samples spanning under-floor, mid-range and overflow observations.
latencies = st.lists(
    st.floats(min_value=1e-7, max_value=200.0,
              allow_nan=False, allow_infinity=False),
    max_size=60,
)


class TestQuantileAccuracy:
    def test_empty_histogram_answers_zero(self):
        histogram = Histogram()
        assert histogram.quantile(0.5) == 0.0
        assert histogram.mean == 0.0
        assert histogram.count == 0

    def test_single_observation_lands_in_its_bucket(self):
        histogram = build([0.010])
        estimate = histogram.quantile(0.5)
        assert 0.010 / BUCKET_GROWTH <= estimate <= 0.010 * BUCKET_GROWTH

    @pytest.mark.parametrize("fraction", [0.5, 0.9, 0.95, 0.99])
    def test_relative_error_stays_within_the_bucket_bound(self, fraction):
        # A log-uniform spread over 1e-4..1e-1 seconds — the latency
        # range real ops live in — with a deterministic sample set.
        samples = sorted(
            10.0 ** (-4.0 + 3.0 * n / 4999.0) for n in range(5000)
        )
        histogram = build(samples)
        exact = percentile(samples, fraction)
        estimate = histogram.quantile(fraction)
        relative_error = abs(estimate - exact) / exact
        # The documented bound: one bucket's width (~19%).
        assert relative_error <= (BUCKET_GROWTH - 1.0) + 1e-9

    def test_overflow_observations_answer_the_last_bound(self):
        histogram = build([500.0, 900.0])
        assert histogram.quantile(0.5) == BUCKET_BOUNDS[-1]
        assert histogram.counts[-1] == 2

    def test_mean_is_exact_not_bucketed(self):
        values = [0.001, 0.002, 0.003]
        histogram = build(values)
        assert math.isclose(histogram.mean, sum(values) / len(values))


def assert_equivalent(left, right):
    """Bucket-exact equality; totals compare as floats (addition order
    may differ by an ulp across merge orders)."""
    assert left.counts == right.counts
    assert left.count == right.count
    assert math.isclose(left.total, right.total,
                        rel_tol=1e-9, abs_tol=1e-12)


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(latencies, latencies)
    def test_merge_commutes(self, a, b):
        assert_equivalent(
            Histogram.merged([build(a), build(b)]),
            Histogram.merged([build(b), build(a)]),
        )

    @settings(max_examples=60, deadline=None)
    @given(latencies, latencies, latencies)
    def test_merge_associates(self, a, b, c):
        left = build(a).merge(build(b)).merge(build(c))
        right = build(a).merge(build(b).merge(build(c)))
        assert_equivalent(left, right)

    @settings(max_examples=60, deadline=None)
    @given(latencies, latencies)
    def test_merged_equals_observing_the_union(self, a, b):
        assert_equivalent(
            Histogram.merged([build(a), build(b)]), build(a + b)
        )

    def test_merge_mutates_self_and_returns_it(self):
        a, b = build([0.01]), build([0.02])
        merged = a.merge(b)
        assert merged is a
        assert a.count == 2
        assert b.count == 1    # the right-hand side is untouched

    def test_snapshot_is_independent(self):
        histogram = build([0.01])
        frozen = histogram.snapshot()
        histogram.observe(0.01)
        assert frozen.count == 1
        assert histogram.count == 2


class TestSerialization:
    def test_round_trip_is_exact(self):
        original = build([1e-7, 0.003, 0.04, 2.0, 500.0])
        rebuilt = Histogram.from_dict(original.to_dict())
        assert rebuilt == original

    def test_foreign_schema_is_refused(self):
        payload = build([0.01]).to_dict()
        payload["schema"] = "log10:whatever"
        with pytest.raises(ValueError):
            Histogram.from_dict(payload)

    def test_wrong_arity_is_refused(self):
        payload = build([0.01]).to_dict()
        payload["counts"] = payload["counts"][:-3]
        with pytest.raises(ValueError):
            Histogram.from_dict(payload)

    def test_schema_tag_pins_the_layout(self):
        assert str(len(BUCKET_BOUNDS)) in BUCKET_SCHEMA
        assert build([]).to_dict()["schema"] == BUCKET_SCHEMA


class TestExactPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.95) == 0.0

    def test_nearest_rank_on_known_values(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 3.0
        assert percentile(values, 1.0) == 5.0


def _drive_tracer(tracer, rounds):
    """The instrumented surface a hot transition loop touches."""
    for _ in range(rounds):
        with tracer.span("render", page="start"):
            tracer.add("boxes_rendered", 3)
            tracer.observe("op.render", 0.0012)
        tracer.annotate_current(note="x")
        tracer.gauge("incremental.update_reuse_ratio", 0.5)
        tracer.histogram("op.render").observe(0.002)


class TestNullTracerStaysFree:
    def test_null_hot_path_retains_no_allocations(self):
        # Regression gate for the "observability is free when off"
        # promise: after warm-up, a NullTracer round retains zero bytes.
        _drive_tracer(NULL_TRACER, 50)   # warm caches/interned strings
        tracemalloc.start()
        try:
            before, _peak = tracemalloc.get_traced_memory()
            _drive_tracer(NULL_TRACER, 2000)
            after, _peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before == 0

    def test_real_tracer_retains_memory_so_the_gate_measures(self):
        # Positive control: the same drive on a live Tracer must retain
        # spans/buckets, proving the tracemalloc harness sees retention.
        tracer = Tracer()
        tracemalloc.start()
        try:
            before, _peak = tracemalloc.get_traced_memory()
            _drive_tracer(tracer, 200)
            after, _peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before > 0
        assert len(tracer.spans()) == 200

    def test_null_histogram_is_inert(self):
        null = NullHistogram()
        null.observe(1.0)
        assert null.count == 0
        assert null.quantile(0.95) == 0.0

    def test_null_tracer_shares_singletons(self):
        tracer = NullTracer()
        assert tracer.histogram("a") is tracer.histogram("b")
        assert tracer.span("x") is tracer.span("y")
        assert tracer.histogram_snapshots() == {}
