"""The instrumented runtime: spans and counters from real transitions.

These tests drive the ordinary public surface (Runtime, LiveSession)
with a real :class:`~repro.obs.trace.Tracer` attached and assert that
the observability layer reports what actually happened — including the
ISSUE acceptance scenarios: an UPDATE that deletes an ill-typed global
increments ``store_entries_deleted``, and one ``edit_source`` call
yields a single ``edit_cycle`` span whose children cover
parse/typecheck/lower/update/render.
"""

from repro.api import Tracer
from repro.obs import CATALOG
from repro.live.session import LiveSession
from repro.surface.compile import compile_source
from repro.system.runtime import Runtime

COUNTER = """\
global count : number = 0
page start()
  render
    boxed
      post "count " || count
      on tap do
        count := count + 1
"""

#: Same app, but ``count`` is now a string: the old numeric store entry
#: is ill-typed under the new code and Fig. 12 fix-up must delete it.
COUNTER_RETYPED = """\
global count : string = "fresh"
page start()
  render
    boxed
      post "count " || count
      on tap do
        count := "again"
"""

MEMO_APP = """\
global greeting : string = "hi"
global clicks : number = 0

fun cell(n : number)
  boxed
    post greeting || " " || n

page start()
  render
    for i = 1 to 4 do
      cell(i)
    boxed
      post "clicks " || clicks
      on tap do
        clicks := clicks + 1
"""

CRASHY = """\
global d : number = 1
page start()
  render
    boxed
      post "n = " || 10 / d
      on tap do
        d := 0
"""


def traced_runtime(source=COUNTER, **kwargs):
    tracer = Tracer()
    compiled = compile_source(source)
    rt = Runtime(
        compiled.code, natives=compiled.natives, tracer=tracer, **kwargs
    ).start()
    return rt, tracer


class TestTransitionSpans:
    def test_startup_produces_the_expected_span_tree(self):
        rt, tracer = traced_runtime()
        names = [span.name for span in tracer.spans()]
        assert "startup" in names
        assert "event" in names     # the queued start-page init
        assert "render" in names
        render = next(s for s in tracer.spans() if s.name == "render")
        assert render.attrs["page"] == "start"

    def test_tap_produces_tap_event_render(self):
        rt, tracer = traced_runtime()
        before = len(tracer.spans())
        rt.tap_text("count 0")
        new = [span.name for span in tracer.spans()[before:]]
        assert "tap" in new and "event" in new and "render" in new

    def test_transitions_carry_elapsed_and_span_id(self):
        rt, tracer = traced_runtime()
        rt.tap_text("count 0")
        span_ids = {span.span_id for span in tracer.spans()}
        for transition in rt.trace:
            assert transition.elapsed > 0.0
            assert transition.span_id in span_ids

    def test_transition_equality_ignores_timing(self):
        rt, _ = traced_runtime()
        plain = Runtime(compile_source(COUNTER).code).start()
        assert [t.rule for t in rt.trace] == [t.rule for t in plain.trace]
        assert rt.trace == plain.trace  # elapsed/span_id are compare=False

    def test_default_runtime_records_nothing(self):
        rt = Runtime(compile_source(COUNTER).code).start()
        assert rt.metrics() == {}
        assert rt.spans() == ()


class TestCounters:
    def test_render_and_eval_counters(self):
        rt, tracer = traced_runtime()
        rt.tap_text("count 0")
        metrics = rt.metrics()
        for name in CATALOG:
            assert name in metrics
        assert metrics["boxes_rendered"] > 0
        assert metrics["eval_steps"] > 0
        # STARTUP queues the init event, the tap queues the handler.
        assert metrics["events_queued"] >= 2

    def test_reuse_counter(self):
        rt, tracer = traced_runtime(reuse_boxes=True)
        baseline = rt.metrics()["reuse_shared_subtrees"]
        rt.tap_text("count 0")
        # The tapped counter box changes but the root is shared subtree
        # material; at minimum the counter moved.
        assert rt.metrics()["reuse_shared_subtrees"] >= baseline

    def test_memo_hits_and_misses(self):
        rt, tracer = traced_runtime(MEMO_APP, memo_render=True)
        after_start = rt.metrics()["memo_misses"]
        assert after_start > 0          # first render populates the memo
        rt.tap_text("clicks 0")
        metrics = rt.metrics()
        # Re-render: cell(1..4) args and read sets are unchanged → hits.
        assert metrics["memo_hits"] >= 4

    def test_update_counts_deleted_ill_typed_globals(self):
        rt, tracer = traced_runtime()
        rt.tap_text("count 0")          # store now holds count := 1
        assert rt.metrics()["store_entries_deleted"] == 0
        compiled = compile_source(COUNTER_RETYPED)
        report = rt.update_code(compiled.code, natives=compiled.natives)
        assert report.dropped_globals == ["count"]
        assert rt.metrics()["store_entries_deleted"] == 1
        update = next(s for s in tracer.spans() if s.name == "update")
        assert "fixup" in {
            s.name for s in tracer.children_of(update.span_id)
        }

    def test_faults_recorded_counter_and_fault_metadata(self):
        rt, tracer = traced_runtime(CRASHY, fault_policy="record")
        rt.tap_text("n = 10")           # d := 0 → render divides by zero
        assert rt.metrics()["faults_recorded"] >= 1
        fault = rt.faults[0]
        assert fault.during == "RENDER"
        assert fault.timestamp > 0.0
        span_ids = {span.span_id for span in tracer.spans()}
        assert fault.span_id in span_ids


class TestEditCycle:
    def test_one_edit_cycle_span_covering_all_phases(self):
        tracer = Tracer()
        session = LiveSession(COUNTER, tracer=tracer)
        session.tap_text("count 0")
        before = len([s for s in tracer.spans() if s.name == "edit_cycle"])
        result = session.edit_source(
            COUNTER.replace('"count "', '"total "')
        )
        assert result.applied
        cycles = [s for s in tracer.spans() if s.name == "edit_cycle"]
        assert len(cycles) == before + 1
        cycle = cycles[-1]
        children = tracer.children_of(cycle.span_id)
        child_names = [span.name for span in children]
        for phase in ("parse", "typecheck", "lower", "update", "render"):
            assert phase in child_names
        assert sum(s.duration for s in children) <= cycle.duration

    def test_edit_result_phase_breakdown(self):
        session = LiveSession(COUNTER, tracer=Tracer())
        result = session.edit_source(
            COUNTER.replace('"count "', '"n "')
        )
        breakdown = result.phase_seconds
        assert set(breakdown) >= {
            "parse", "typecheck", "lower", "update", "render",
        }
        assert all(seconds >= 0.0 for seconds in breakdown.values())
        assert sum(breakdown.values()) <= result.elapsed

    def test_rejected_edit_still_yields_a_cycle(self):
        tracer = Tracer()
        session = LiveSession(COUNTER, tracer=tracer)
        result = session.edit_source("page start(\n  oops")
        assert not result.applied
        cycle = [s for s in tracer.spans() if s.name == "edit_cycle"][-1]
        children = [s.name for s in tracer.children_of(cycle.span_id)]
        assert "parse" in children
        assert "update" not in children   # never got that far

    def test_untraced_session_measures_elapsed_only(self):
        session = LiveSession(COUNTER)
        result = session.edit_source(
            COUNTER.replace('"count "', '"n "')
        )
        assert result.applied
        assert result.elapsed > 0.0
        assert result.phases == ()
