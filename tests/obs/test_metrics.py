"""Prometheus exposition, parsing and the ``repro top`` renderer.

The contract under test: a scrape round-trips **losslessly** — counters
and gauge series come back exactly, and sparse cumulative buckets
reconstruct the histogram's exact bucket counts — because ``repro top``
computes windowed percentiles from reconstructed histograms and any
loss would silently skew them.
"""

import math

from repro.obs.histo import Histogram
from repro.obs.metrics import (
    CONTENT_TYPE,
    delta_histogram,
    histograms_from_families,
    metric_name,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.top import TopView, run_top


def build(values):
    histogram = Histogram()
    for value in values:
        histogram.observe(value)
    return histogram


class TestRendering:
    def test_metric_name_spelling(self):
        assert metric_name("cluster.memo.shared_hits") == \
            "repro_cluster_memo_shared_hits"
        assert metric_name("sessions_created", "_total") == \
            "repro_sessions_created_total"

    def test_content_type_is_the_scrapeable_text_format(self):
        assert CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in CONTENT_TYPE

    def test_counters_render_with_total_suffix_and_type_line(self):
        text = render_prometheus(counters={"sessions_created": 7})
        assert "# TYPE repro_sessions_created_total counter" in text
        assert "repro_sessions_created_total 7" in text.splitlines()

    def test_gauges_render_scalar_or_labeled_never_summed(self):
        text = render_prometheus(gauges={
            "incremental.update_reuse_ratio": {"0": 0.8, "1": 0.4},
            "cluster.cache.entries": 12,
        })
        lines = text.splitlines()
        assert 'repro_incremental_update_reuse_ratio{worker="0"} 0.8' \
            in lines
        assert 'repro_incremental_update_reuse_ratio{worker="1"} 0.4' \
            in lines
        assert "repro_cluster_cache_entries 12" in lines
        # The nonsense sum (1.2) must appear nowhere.
        assert all("1.2" not in line for line in lines)

    def test_histogram_buckets_are_cumulative_and_sparse(self):
        text = render_prometheus(
            histograms={"op.render": build([0.01, 0.01, 2.0])}
        )
        lines = [line for line in text.splitlines()
                 if line.startswith("repro_op_render_latency_seconds")]
        bucket_lines = [line for line in lines if "_bucket" in line]
        # Two occupied buckets plus the +Inf closer — not one line per
        # bucket in the 100+-bucket layout.
        assert len(bucket_lines) == 3
        assert bucket_lines[-1].startswith(
            'repro_op_render_latency_seconds_bucket{le="+Inf"} 3'
        )
        assert "repro_op_render_latency_seconds_count 3" in lines
        assert any("_sum" in line for line in lines)


class TestRoundTrip:
    def test_counters_and_gauges_come_back_exactly(self):
        text = render_prometheus(
            counters={"cluster.requests_routed": 41},
            gauges={"sessions.open_breakers": {"0": 0, "1": 2}},
        )
        families = parse_prometheus(text)
        assert families["repro_cluster_requests_routed_total"] == \
            [({}, 41.0)]
        series = dict(
            (labels["worker"], value)
            for labels, value in families["repro_sessions_open_breakers"]
        )
        assert series == {"0": 0.0, "1": 2.0}

    def test_histogram_reconstruction_is_bucket_exact(self):
        original = build(
            [1e-7, 0.0001, 0.0001, 0.003, 0.04, 0.04, 0.04, 2.0, 500.0]
        )
        families = parse_prometheus(
            render_prometheus(histograms={"op.render": original})
        )
        rebuilt = histograms_from_families(families)[
            "repro_op_render_latency_seconds"
        ]
        assert rebuilt.counts == original.counts
        assert rebuilt.count == original.count
        assert math.isclose(rebuilt.total, original.total, rel_tol=1e-9)
        assert math.isclose(
            rebuilt.quantile(0.95), original.quantile(0.95)
        )

    def test_parser_survives_garbage_lines(self):
        families = parse_prometheus(
            "# HELP whatever\n"
            "repro_good_total 3\n"
            "this is not a sample line {{{\n"
            "repro_bad_value nan-ish-but-not really x\n"
            "\n"
        )
        assert families == {"repro_good_total": [({}, 3.0)]}


class TestDeltaHistogram:
    def test_window_is_the_bucketwise_difference(self):
        previous = build([0.01, 0.02])
        current = build([0.01, 0.02, 0.5, 0.5])
        window = delta_histogram(current, previous)
        assert window.count == 2
        # Only the new observations (0.5s) remain in the window.
        assert window.quantile(0.5) > 0.3

    def test_no_previous_means_since_start(self):
        current = build([0.01])
        window = delta_histogram(current, None)
        assert window == current
        assert window is not current

    def test_process_restart_clamps_to_current(self):
        previous = build([0.01] * 10)
        current = build([0.02])   # fewer observations: a restart
        window = delta_histogram(current, previous)
        assert window == current


def scrape(routed, render_values, up=("1", "1")):
    """A synthetic cluster ``/metrics`` document."""
    return render_prometheus(
        counters={
            "cluster.requests_routed": routed,
            "cluster.cache.gets": routed,
            "cluster.cache.hits": routed // 2,
        },
        gauges={
            "sessions.open_breakers": {"0": 0, "1": 1},
            "cluster.worker.up": {
                str(n): int(flag) for n, flag in enumerate(up)
            },
            "cluster.worker.respawns": {"0": 0, "1": 3},
            "cluster.worker.ping_age_seconds": {"0": 0.2, "1": 0.4},
        },
        histograms={"op.render": build(render_values)},
    )


class TestTopView:
    def test_first_frame_shows_since_start(self):
        view = TopView(source="http://x/metrics")
        screen = view.render(scrape(10, [0.01, 0.02]), now=100.0)
        assert "repro top — http://x/metrics" in screen
        assert "since start" in screen
        assert "10 total" in screen
        assert "op_render" in screen
        assert "worker" in screen
        assert "open breakers: 1" in screen

    def test_second_frame_is_windowed_with_rates(self):
        view = TopView()
        view.render(scrape(10, [0.01] * 4), now=100.0)
        screen = view.render(
            scrape(30, [0.01] * 4 + [0.5] * 8), now=102.0
        )
        assert "window 2.0s" in screen
        # 20 new requests over 2 seconds.
        assert "10.0/s" in screen
        # The op table shows the window's 8 new observations and their
        # p50 (~500ms), not the lifetime mix.
        row = next(
            line for line in screen.splitlines()
            if line.startswith("op_render")
        )
        assert "8" in row.split()
        p50_ms = float(row.split()[-2])
        assert 400.0 <= p50_ms <= 600.0

    def test_worker_table_flags_a_dead_worker(self):
        view = TopView()
        screen = view.render(scrape(5, [0.01], up=("1", "0")), now=1.0)
        lines = screen.splitlines()
        worker_1 = next(line for line in lines if line.startswith("1 "))
        assert "NO" in worker_1
        assert "3" in worker_1.split()   # its respawn count

    def test_empty_scrape_still_renders(self):
        view = TopView()
        screen = view.render("", now=1.0)
        assert "repro top" in screen
        assert "(no latency histograms yet)" in screen


class TestRunTop:
    def test_unreachable_endpoint_fails_fast(self, capsys):
        # Port 9 (discard) on localhost: nothing listens in CI.
        assert run_top(
            "http://127.0.0.1:9/metrics", interval=0.01, iterations=1
        ) == 1
