"""The sinks: in-memory queries, JSONL round-tripping, text reports."""

import io
import json

from repro.api import Tracer
from repro.obs import (
    InMemorySink,
    JsonlSink,
    TextSink,
    format_metric_table,
    format_span_tree,
)


def traced_tracer(sink):
    tracer = Tracer(sinks=[sink])
    with tracer.span("edit_cycle"):
        with tracer.span("parse"):
            pass
        with tracer.span("update"):
            with tracer.span("fixup"):
                pass
        with tracer.span("render", page="start"):
            tracer.add("boxes_rendered", 4)
    return tracer


class TestInMemorySink:
    def test_collects_and_queries(self):
        sink = InMemorySink()
        tracer = traced_tracer(sink)
        assert len(sink) == 5
        assert [s.name for s in sink.named("parse")] == ["parse"]
        assert sink.first("render").attrs == {"page": "start"}
        assert sink.first("missing") is None
        cycle = sink.first("edit_cycle")
        child_names = {s.name for s in sink.children_of(cycle.span_id)}
        assert child_names == {"parse", "update", "render"}
        assert [s.name for s in sink.roots()] == ["edit_cycle"]
        assert tracer.spans() == tuple(sink.spans)

    def test_bounded_keeps_newest(self):
        sink = InMemorySink(max_spans=10)
        tracer = Tracer(sinks=[sink])
        for index in range(25):
            with tracer.span("s{}".format(index)):
                pass
        assert len(sink) <= 10
        assert sink.dropped > 0
        assert sink.spans[-1].name == "s24"

    def test_clear(self):
        sink = InMemorySink()
        traced_tracer(sink)
        sink.clear()
        assert len(sink) == 0


class TestJsonlSink:
    def test_every_line_round_trips(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        tracer = traced_tracer(sink)
        sink.write_metrics(tracer.metrics())
        sink.write_record("bench", mean_seconds=0.25)
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 7  # 5 spans + metrics + record
        objects = [json.loads(line) for line in lines]
        kinds = [obj["type"] for obj in objects]
        assert kinds == ["span"] * 5 + ["metrics", "record"]
        assert objects[-2]["metrics"]["boxes_rendered"] == 4
        assert objects[-1] == {
            "name": "bench", "type": "record", "mean_seconds": 0.25,
        }

    def test_span_payload_shape(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        tracer = Tracer(sinks=[sink])
        with tracer.span("render", page="start", depth=2):
            pass
        payload = json.loads(buffer.getvalue())
        assert payload["name"] == "render"
        assert payload["attrs"] == {"page": "start", "depth": 2}
        assert payload["parent_id"] is None
        assert payload["duration"] >= 0.0

    def test_writes_to_a_path(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlSink(path) as sink:
            tracer = Tracer(sinks=[sink])
            with tracer.span("a"):
                pass
            sink.write_metrics(tracer.metrics())
        with open(path) as handle:
            lines = handle.read().splitlines()
        assert [json.loads(line)["type"] for line in lines] == [
            "span", "metrics",
        ]

    def test_non_json_attr_values_are_stringified(self):
        buffer = io.StringIO()
        tracer = Tracer(sinks=[JsonlSink(buffer)])
        with tracer.span("a", value=object()):
            pass
        payload = json.loads(buffer.getvalue())
        assert isinstance(payload["attrs"]["value"], str)


class TestTextRendering:
    def test_span_tree_shows_nesting_and_attrs(self):
        sink = InMemorySink()
        traced_tracer(sink)
        tree = format_span_tree(sink.spans)
        lines = tree.splitlines()
        assert lines[0].startswith("edit_cycle")
        assert any(line.startswith("  parse") for line in lines)
        assert any(line.startswith("    fixup") for line in lines)
        assert any("render (page=start)" in line for line in lines)
        assert all("ms" in line for line in lines)

    def test_orphans_render_as_roots(self):
        sink = InMemorySink()
        tracer = traced_tracer(sink)
        cycle = sink.first("edit_cycle")
        partial = [s for s in sink.spans if s.span_id != cycle.span_id]
        tree = format_span_tree(partial)
        assert tree.splitlines()[0].startswith("parse")

    def test_empty_inputs(self):
        assert "no spans" in format_span_tree([])
        assert "no metrics" in format_metric_table({})

    def test_metric_table_sorted_and_aligned(self):
        table = format_metric_table(
            {"boxes_rendered": 4, "a_metric": 1, "ratio": 0.5}
        )
        lines = table.splitlines()
        assert lines[0].split() == ["metric", "value"]
        assert [line.split()[0] for line in lines[1:]] == [
            "a_metric", "boxes_rendered", "ratio",
        ]
        assert "0.500000" in table

    def test_text_sink_full_report(self):
        sink = TextSink()
        tracer = traced_tracer(sink)
        report = sink.report(metrics=tracer.metrics())
        assert "span tree:" in report
        assert "metrics:" in report
        assert "boxes_rendered" in report
        report_without_metrics = sink.report()
        assert "metrics:" not in report_without_metrics
