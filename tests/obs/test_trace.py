"""The tracer core: spans, nesting, counters, the null implementation."""

import pytest

from repro.api import Tracer
from repro.obs import NULL_TRACER, NullTracer, Stopwatch
from repro.obs.trace import CATALOG


class TestSpans:
    def test_span_records_duration(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            pass
        assert span.finished
        assert span.end >= span.start
        assert span.duration >= 0.0

    def test_nesting_sets_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        assert outer.parent_id is None
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == parent.span_id
        assert b.parent_id == parent.span_id
        assert a.span_id != b.span_id

    def test_children_finish_before_parent_in_sink_order(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        assert [span.name for span in tracer.spans()] == ["parent", "child"][::-1]

    def test_attrs_and_annotate(self):
        tracer = Tracer()
        with tracer.span("render", page="start") as span:
            span.annotate(boxes=7)
        assert span.attrs == {"page": "start", "boxes": 7}

    def test_exception_annotates_and_closes(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom") as span:
                raise ValueError("nope")
        assert span.finished
        assert "ValueError" in span.attrs["error"]
        # The tracer stack unwound: a new span is a root again.
        with tracer.span("after") as after:
            pass
        assert after.parent_id is None

    def test_current_and_last_span_id(self):
        tracer = Tracer()
        assert tracer.current_span_id is None
        with tracer.span("a") as a:
            assert tracer.current_span_id == a.span_id
        assert tracer.current_span_id is None
        assert tracer.last_span_id == a.span_id

    def test_out_of_order_finish_closes_abandoned_children(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        tracer.span("inner")  # never explicitly finished
        outer.finish()
        names = {span.name for span in tracer.spans()}
        assert names == {"outer", "inner"}
        assert all(span.finished for span in tracer.spans())

    def test_children_of(self):
        tracer = Tracer()
        with tracer.span("p") as p:
            with tracer.span("c1"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("c2"):
                pass
        assert [s.name for s in tracer.children_of(p.span_id)] == ["c1", "c2"]

    def test_summed_child_durations_bounded_by_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            for _ in range(5):
                with tracer.span("child"):
                    sum(range(100))
        children = tracer.children_of(parent.span_id)
        assert len(children) == 5
        assert sum(c.duration for c in children) <= parent.duration


class TestMetrics:
    def test_catalog_preregistered_at_zero(self):
        metrics = Tracer().metrics()
        for name in CATALOG:
            assert metrics[name] == 0

    def test_counters_accumulate(self):
        tracer = Tracer()
        tracer.add("boxes_rendered", 3)
        tracer.add("boxes_rendered")
        tracer.inc("custom_counter", 2)
        metrics = tracer.metrics()
        assert metrics["boxes_rendered"] == 4
        assert metrics["custom_counter"] == 2

    def test_gauges_last_write_wins(self):
        tracer = Tracer()
        tracer.gauge("queue_depth", 4)
        tracer.gauge("queue_depth", 1)
        assert tracer.metrics()["queue_depth"] == 1

    def test_counter_shadows_gauge_in_merged_view(self):
        tracer = Tracer()
        tracer.gauge("eval_steps", 99)
        assert tracer.metrics()["eval_steps"] == 0  # the counter wins


class TestNullTracer:
    def test_is_disabled_and_stateless(self):
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is True
        span = NULL_TRACER.span("anything", page="x")
        assert span.span_id is None
        assert span.duration == 0.0
        with span as entered:
            assert entered is span
        NULL_TRACER.add("boxes_rendered", 10)
        NULL_TRACER.gauge("depth", 3)
        assert NULL_TRACER.metrics() == {}
        assert NULL_TRACER.spans() == ()
        assert NULL_TRACER.children_of(1) == ()

    def test_shared_singleton_span(self):
        assert NullTracer().span("a") is NULL_TRACER.span("b")


class TestStopwatch:
    def test_elapsed_is_monotonic(self):
        watch = Stopwatch()
        first = watch.elapsed()
        second = watch.elapsed()
        assert 0.0 <= first <= second

    def test_restart(self):
        watch = Stopwatch()
        watch.elapsed()
        watch.restart()
        assert watch.elapsed() < 10.0  # restarted recently
