"""Shared fixtures for the provenance suite.

Every test here records a session through a journaled
:class:`~repro.serve.host.SessionHost` and then queries the journal —
the same record/replay split the server runs in production.  The
session kwargs used for recording are reused for replay: determinism
requires rebuilding the session the way it was built.
"""

import json

import pytest

from repro.api import Journal
from repro.serve.host import SessionHost

#: Two independent globals behind two boxes — provenance queries must
#: keep their histories apart.
TWO_GLOBALS = (
    "global a : number = 0\n"
    "global b : number = 0\n"
    "page start()\n  render\n"
    "    boxed\n      post \"a: \" || a\n"
    "      on tap do\n        a := a + 1\n"
    "    boxed\n      post \"b: \" || b\n"
    "      on tap do\n        b := b + 1\n"
)

SESSION_KWARGS = {"reuse_boxes": True, "memo_render": True}

REPLAY_OPTIONS = {"session_kwargs": SESSION_KWARGS}


@pytest.fixture
def journal_dir(tmp_path):
    return str(tmp_path / "journal")


def journaled_host(journal_dir, source, checkpoint_every=50):
    journal = Journal(journal_dir, checkpoint_every=checkpoint_every)
    host = SessionHost(
        default_source=source,
        session_kwargs=dict(SESSION_KWARGS),
        journal=journal,
    )
    return host, journal


def event_seqs(journal_dir, token):
    """Seqs of the token's journaled events, in order."""
    return [
        record["seq"]
        for record in Journal(journal_dir).records_for(token)
        if record.get("kind") == "event"
    ]


def mutate_event(journal_dir, seq, args):
    """Rewrite one journaled event's args in place — the tampering
    half of the round-trip provenance test."""
    journal = Journal(journal_dir)
    lines = []
    hit = False
    with open(journal.path) as handle:
        for line in handle:
            record = json.loads(line)
            if record.get("kind") == "event" and record.get("seq") == seq:
                record["args"] = args
                hit = True
            lines.append(
                json.dumps(record, separators=(",", ":")) + "\n"
            )
    assert hit, "no event with seq {}".format(seq)
    with open(journal.path, "w") as handle:
        handle.writelines(lines)
