"""Trace replay against edited code: the divergence regression gate."""

from repro.apps.counter import SOURCE as COUNTER
from repro.api import Journal, Tracer
from repro.provenance import divergence_report

from .conftest import REPLAY_OPTIONS, event_seqs, journaled_host

BENIGN = COUNTER + "\nfun unused(x : number) : number\n  return x\n"
BREAKING = COUNTER.replace("count + 1", "count + 2")


def recorded_counter(journal_dir, taps=4):
    host, _ = journaled_host(journal_dir, COUNTER)
    token = host.create()
    for _ in range(taps):
        host.tap(token, path=[0])
    return token


class TestDivergence:
    def test_benign_edit_is_identical(self, journal_dir):
        recorded_counter(journal_dir)
        report = divergence_report(
            Journal(journal_dir), BENIGN, **REPLAY_OPTIONS
        )
        assert report.clean and not report.diverged
        assert report.status == "identical"
        assert report.generations == 5      # boot + 4 taps
        assert report.events_replayed == 4
        assert "byte-identical" in str(report)

    def test_breaking_edit_names_generation_seq_and_box(self, journal_dir):
        token = recorded_counter(journal_dir)
        report = divergence_report(
            Journal(journal_dir), BREAKING, **REPLAY_OPTIONS
        )
        assert report.diverged and report.status == "diverged"
        # The boot render agrees (count starts at 0 either way); the
        # first tap is where +1 and +2 part ways.
        assert report.first_divergent_generation == 1
        assert report.first_divergent_seq == event_seqs(journal_dir, token)[0]
        assert [
            (c.occurrence, c.change) for c in report.changed_boxes
        ] == [(0, "changed")]

    def test_boot_divergence_has_no_seq(self, journal_dir):
        recorded_counter(journal_dir, taps=1)
        report = divergence_report(
            Journal(journal_dir),
            COUNTER.replace('"count: "', '"taps: "'),
            **REPLAY_OPTIONS
        )
        assert report.first_divergent_generation == 0
        assert report.first_divergent_seq is None

    def test_uncompilable_edit_is_rejected(self, journal_dir):
        recorded_counter(journal_dir)
        report = divergence_report(
            Journal(journal_dir), "page start(\n", **REPLAY_OPTIONS
        )
        assert report.status == "rejected" and report.diverged
        assert report.problems
        assert "does not compile" in str(report)

    def test_recorded_edit_source_replays_on_both_runs(self, journal_dir):
        # A trace that itself contains an edit re-asserts the recorded
        # program mid-replay on both runs, so a benign edit still
        # compares identical.
        host, _ = journaled_host(journal_dir, COUNTER)
        token = host.create()
        host.tap(token, path=[0])
        host.edit_source(token, COUNTER.replace('"reset"', '"clear"'))
        host.tap(token, path=[0])
        report = divergence_report(
            Journal(journal_dir), BENIGN, **REPLAY_OPTIONS
        )
        assert report.clean, str(report)

    def test_divergences_are_counted(self, journal_dir):
        recorded_counter(journal_dir)
        tracer = Tracer()
        divergence_report(
            Journal(journal_dir), BREAKING, tracer=tracer, **REPLAY_OPTIONS
        )
        assert tracer.metrics()["replay.divergences"] == 1
