"""Deterministic replay: byte-identical state at any journal seq."""

import pytest

from repro.apps.counter import SOURCE as COUNTER
from repro.api import Journal, Tracer
from repro.core.errors import ReproError
from repro.provenance import replay_session, replay_to

from .conftest import REPLAY_OPTIONS, event_seqs, journaled_host

CRASHY = (
    "global d : number = 1\n"
    "page start()\n  render\n    boxed\n      post \"n = \" || 10 / d\n"
    "      on tap do\n        d := 0\n"
)


class TestReplay:
    def test_cold_replay_is_byte_identical_to_live(self, journal_dir):
        host, _ = journaled_host(journal_dir, COUNTER)
        token = host.create()
        for _ in range(5):
            host.tap(token, path=[0])
        live_html = host.render(token)[0]

        result = replay_session(
            Journal(journal_dir), use_checkpoint=False, **REPLAY_OPTIONS
        )
        assert result.token == token
        assert result.checkpoint_seq is None
        assert result.events_replayed == 5
        # The host titles documents with the token.
        assert result.session.html(title=token) == live_html

    def test_checkpoint_assisted_replays_only_the_tail(self, journal_dir):
        host, _ = journaled_host(journal_dir, COUNTER, checkpoint_every=2)
        token = host.create()
        for _ in range(5):
            host.tap(token, path=[0])
        live_html = host.render(token)[0]

        result = replay_session(Journal(journal_dir), **REPLAY_OPTIONS)
        assert result.checkpoint_seq is not None
        assert result.events_replayed <= 2
        assert result.session.html(title=token) == live_html

    def test_replay_to_every_generation_is_byte_identical(self, journal_dir):
        # The acceptance bar: a 50+ event session, checkpointed along
        # the way, must replay byte-identically at *every* generation.
        host, _ = journaled_host(journal_dir, COUNTER, checkpoint_every=10)
        token = host.create()
        live = [host.render(token)[0]]          # generation 0: the boot
        for step in range(52):
            host.tap(token, path=[1] if step % 13 == 12 else [0])
            live.append(host.render(token)[0])

        journal = Journal(journal_dir)
        seqs = event_seqs(journal_dir, token)
        assert len(seqs) == 52
        create_seq = next(journal.read())["seq"]
        checkpoints_used = 0
        for generation, target in enumerate([create_seq] + seqs):
            result = replay_to(
                journal, token, seq=target, **REPLAY_OPTIONS
            )
            assert result.session.html(title=token) == live[generation], (
                "generation {} (seq {}) diverged".format(generation, target)
            )
            assert result.last_seq <= target
            if result.checkpoint_seq is not None:
                checkpoints_used += 1
        # Late generations must actually be seeded from checkpoints.
        assert checkpoints_used > 20

    def test_replayed_session_is_live(self, journal_dir):
        host, _ = journaled_host(journal_dir, COUNTER)
        token = host.create()
        host.tap(token, path=[0])

        result = replay_session(Journal(journal_dir), **REPLAY_OPTIONS)
        # Time travel hands back a working present: fork the past.
        result.session.tap((0,))
        assert "count: 2" in result.session.screenshot()

    def test_faults_are_reencountered_not_raised(self, journal_dir):
        host, journal = journaled_host(journal_dir, CRASHY)
        host.session_kwargs["fault_policy"] = "record"
        token = host.create()
        host.tap(token, path=[0])          # d := 0 → next render divides by 0
        result = replay_session(
            Journal(journal_dir),
            session_kwargs={"fault_policy": "record"},
        )
        assert result.events_replayed == 1
        assert result.faults >= 1

    def test_metrics_are_counted(self, journal_dir):
        host, _ = journaled_host(journal_dir, COUNTER, checkpoint_every=2)
        token = host.create()
        for _ in range(3):
            host.tap(token, path=[0])
        tracer = Tracer()
        replay_session(Journal(journal_dir), tracer=tracer, **REPLAY_OPTIONS)
        metrics = tracer.metrics()
        assert metrics["replay.sessions"] == 1
        assert metrics["replay.checkpoints_used"] == 1
        assert metrics["replay.events"] >= 1


class TestResolveToken:
    def test_empty_journal_refused(self, journal_dir):
        with pytest.raises(ReproError, match="no sessions"):
            replay_session(Journal(journal_dir))

    def test_ambiguous_journal_names_the_candidates(self, journal_dir):
        host, _ = journaled_host(journal_dir, COUNTER)
        first = host.create()
        second = host.create()
        with pytest.raises(ReproError) as info:
            replay_session(Journal(journal_dir))
        assert first in str(info.value) and second in str(info.value)

    def test_explicit_token_selects_the_session(self, journal_dir):
        host, _ = journaled_host(journal_dir, COUNTER)
        first = host.create()
        second = host.create()
        host.tap(second, path=[0])
        result = replay_session(
            Journal(journal_dir), second, **REPLAY_OPTIONS
        )
        assert result.events_replayed == 1
        assert "count: 1" in result.session.screenshot()
        assert replay_session(
            Journal(journal_dir), first, **REPLAY_OPTIONS
        ).events_replayed == 0


class TestProvenanceCapture:
    def test_capture_records_reads_and_writes_per_event(self, journal_dir):
        host, _ = journaled_host(journal_dir, COUNTER, checkpoint_every=1)
        token = host.create()
        host.tap(token, path=[0])
        host.tap(token, path=[0])

        result = replay_session(
            Journal(journal_dir), capture_provenance=True, **REPLAY_OPTIONS
        )
        # Capture forces a cold start: attribution needs the whole tape.
        assert result.checkpoint_seq is None
        assert len(result.provenance) == 2
        for info in result.provenance.values():
            assert info["op"] == "tap"
            writes = {}
            for entry in info["entries"]:
                writes.update(entry["writes"])
            assert "count" in writes

    def test_capture_off_by_default(self, journal_dir):
        host, _ = journaled_host(journal_dir, COUNTER)
        token = host.create()
        host.tap(token, path=[0])
        result = replay_session(Journal(journal_dir), **REPLAY_OPTIONS)
        assert result.provenance == {}
        assert result.session.runtime.system.provenance_log == []
