"""The TimeMachine cursor: goto/step over a recorded session."""

import pytest

from repro.apps.counter import SOURCE as COUNTER
from repro.api import Journal
from repro.core.errors import ReproError
from repro.provenance import TimeMachine

from .conftest import SESSION_KWARGS, journaled_host


@pytest.fixture
def machine(journal_dir):
    host, _ = journaled_host(journal_dir, COUNTER, checkpoint_every=3)
    token = host.create()
    for _ in range(6):
        host.tap(token, path=[0])
    return TimeMachine(
        Journal(journal_dir), session_kwargs=dict(SESSION_KWARGS)
    )


class TestTimeMachine:
    def test_positions_cover_boot_plus_events(self, machine):
        assert len(machine) == 7
        assert machine.position is None  # no cursor before the first move

    def test_every_position_shows_its_count(self, machine):
        for position in range(len(machine)):
            machine.goto(position)
            assert "count: {}".format(position) in machine.screenshot()
            assert machine.position == position

    def test_step_back_and_forward(self, machine):
        machine.end()
        assert "count: 6" in machine.screenshot()
        machine.step_back()
        assert "count: 5" in machine.screenshot()
        machine.step_forward()
        assert "count: 6" in machine.screenshot()

    def test_boot_state_precedes_every_event(self, machine):
        machine.start()
        assert "count: 0" in machine.screenshot()
        assert machine.seq is None
        with pytest.raises(ReproError, match="boot"):
            machine.step_back()

    def test_step_past_the_end_refused(self, machine):
        machine.end()
        with pytest.raises(ReproError, match="end"):
            machine.step_forward()

    def test_goto_out_of_range_refused(self, machine):
        with pytest.raises(ReproError, match="out of range"):
            machine.goto(7)

    def test_goto_seq_lands_on_the_covering_position(self, machine):
        target = machine.event_seqs[3]
        machine.goto_seq(target)
        assert machine.position == 4
        assert machine.seq == target
        assert "count: 4" in machine.screenshot()

    def test_jumps_use_checkpoints(self, machine):
        machine.end()
        result = machine.last_replay
        assert result.checkpoint_seq is not None
        assert result.events_replayed <= 3  # tail, not the whole prefix

    def test_the_past_is_a_live_fork(self, machine, journal_dir):
        machine.goto(2)
        machine.session.tap((1,))          # reset — in the fork only
        assert "count: 0" in machine.screenshot()
        # The journal is untouched: the real end still shows count 6.
        assert "count: 6" in TimeMachine(
            Journal(journal_dir), session_kwargs=dict(SESSION_KWARGS)
        ).end().screenshot()

    def test_session_requires_a_cursor_move(self, machine):
        with pytest.raises(ReproError, match="cursor"):
            machine.session
