"""Provenance round trip: why() names the exact span, slots and events
— and mutating the journal proves the attribution is causal."""

import pytest

from repro.apps.counter import SOURCE as COUNTER
from repro.api import Journal, Tracer
from repro.core.errors import ReproError
from repro.provenance import boxed_read_set, replay_session, why
from repro.provenance.divergence import _box_fragments

from .conftest import (
    REPLAY_OPTIONS,
    TWO_GLOBALS,
    event_seqs,
    journaled_host,
    mutate_event,
)


def recorded_two_globals(journal_dir):
    """3 taps on the ``a`` box, 2 on the ``b`` box, interleaved."""
    host, _ = journaled_host(journal_dir, TWO_GLOBALS)
    token = host.create()
    for path in ([0], [1], [0], [1], [0]):
        host.tap(token, path=path)
    return token


def box_fragment(journal_dir, report):
    """The queried box's rendered HTML fragment after a fresh replay."""
    result = replay_session(Journal(journal_dir), **REPLAY_OPTIONS)
    return _box_fragments(result.session.display)[
        (report.box_id, report.occurrence)
    ]


class TestWhy:
    def test_why_names_span_slots_and_events(self, journal_dir):
        token = recorded_two_globals(journal_dir)
        report = why(Journal(journal_dir), text="a: 3", **REPLAY_OPTIONS)
        assert report.token == token
        assert report.path == (0,)
        assert report.owner == "page start (render)"
        assert "line" in str(report.span)
        # Exactly the one slot the box reads, attributed to the exact
        # event that last assigned it.
        assert report.reads == ("a",)
        (slot,) = report.slots
        a_taps = event_seqs(journal_dir, token)[0::2]
        assert (slot.name, slot.value) == ("a", "3")
        assert slot.version > 0
        assert slot.origin_seq == a_taps[-1]
        # Exactly the three a-taps, oldest first — the b-taps stay out.
        assert [link.seq for link in report.events] == a_taps
        assert all(link.wrote == ("a",) for link in report.events)

    def test_why_by_path_matches_why_by_text(self, journal_dir):
        recorded_two_globals(journal_dir)
        by_path = why(Journal(journal_dir), path=(1,), **REPLAY_OPTIONS)
        by_text = why(Journal(journal_dir), text="b: 2", **REPLAY_OPTIONS)
        # Write versions are process-global ticks, so two replays give
        # different absolute numbers — everything else must agree.
        assert by_path.reads == by_text.reads == ("b",)
        assert by_path.path == by_text.path == (1,)
        assert by_path.events == by_text.events
        assert [
            (s.name, s.value, s.origin_seq) for s in by_path.slots
        ] == [
            (s.name, s.value, s.origin_seq) for s in by_text.slots
        ]

    def test_mutating_a_named_event_changes_the_box(self, journal_dir):
        # The round trip, forward half: tamper with an event the report
        # *named* and the box must render differently on replay.
        recorded_two_globals(journal_dir)
        report = why(Journal(journal_dir), text="a: 3", **REPLAY_OPTIONS)
        before = box_fragment(journal_dir, report)
        mutate_event(journal_dir, report.events[0].seq, {"path": [1]})
        after = box_fragment(journal_dir, report)
        assert after != before
        assert "a: 2" in after

    def test_mutating_an_unrelated_event_leaves_the_box_identical(
        self, journal_dir
    ):
        # The control half: tamper with an event the report did NOT
        # name and the box's bytes must not move (even though the
        # display as a whole changes).
        token = recorded_two_globals(journal_dir)
        report = why(Journal(journal_dir), text="a: 3", **REPLAY_OPTIONS)
        named = {link.seq for link in report.events}
        unrelated = [
            seq for seq in event_seqs(journal_dir, token)
            if seq not in named
        ]
        before = box_fragment(journal_dir, report)
        whole_before = replay_session(
            Journal(journal_dir), **REPLAY_OPTIONS
        ).session.html(title=token)
        mutate_event(journal_dir, unrelated[0], {"path": [9]})  # no-op tap
        after = box_fragment(journal_dir, report)
        whole_after = replay_session(
            Journal(journal_dir), **REPLAY_OPTIONS
        ).session.html(title=token)
        assert after == before                  # the queried box: identical
        assert whole_after != whole_before      # the b box did change

    def test_accumulating_chain_links_every_assignment(self, journal_dir):
        # count := count + 1 reads count: the reverse closure must link
        # the whole chain, including taps before a reset.
        host, _ = journaled_host(journal_dir, COUNTER)
        token = host.create()
        host.tap(token, path=[0])
        host.tap(token, path=[0])
        host.tap(token, path=[1])   # reset
        host.tap(token, path=[0])
        report = why(Journal(journal_dir), text="count: 1", **REPLAY_OPTIONS)
        assert [link.seq for link in report.events] == event_seqs(
            journal_dir, token
        )

    def test_constant_box_reads_nothing(self, journal_dir):
        recorded_two_globals(journal_dir)
        host_journal = Journal(journal_dir)
        session = replay_session(host_journal, **REPLAY_OPTIONS).session
        code = session.runtime.system.code
        # The read-set helper itself: the a box depends only on a.
        box_id = session.select_box((0,)).box_id
        assert boxed_read_set(code, box_id) == {"a"}

    def test_metrics_are_counted(self, journal_dir):
        recorded_two_globals(journal_dir)
        tracer = Tracer()
        report = why(
            Journal(journal_dir), text="a: 3", tracer=tracer,
            **REPLAY_OPTIONS
        )
        metrics = tracer.metrics()
        assert metrics["provenance.queries"] == 1
        assert metrics["provenance.events_linked"] == len(report.events)

    def test_needs_a_path_or_a_text(self, journal_dir):
        recorded_two_globals(journal_dir)
        with pytest.raises(ReproError, match="path or a box text"):
            why(Journal(journal_dir), **REPLAY_OPTIONS)

    def test_unknown_text_refused(self, journal_dir):
        recorded_two_globals(journal_dir)
        with pytest.raises(ReproError):
            why(Journal(journal_dir), text="no such box", **REPLAY_OPTIONS)
