"""Cell geometry primitives."""

import pytest

from repro.core.errors import ReproError
from repro.render.geometry import Rect, Size, as_cells


class TestSize:
    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            Size(-1, 0)

    def test_grow(self):
        assert Size(2, 3).grow(1, 2) == Size(3, 5)


class TestRect:
    def test_edges(self):
        rect = Rect(2, 3, 4, 5)
        assert rect.right == 6 and rect.bottom == 8

    def test_contains_half_open(self):
        rect = Rect(0, 0, 2, 2)
        assert rect.contains(0, 0)
        assert rect.contains(1, 1)
        assert not rect.contains(2, 0)
        assert not rect.contains(0, 2)
        assert not rect.contains(-1, 0)

    def test_inset(self):
        assert Rect(0, 0, 10, 10).inset(2) == Rect(2, 2, 6, 6)

    def test_inset_clamps(self):
        shrunk = Rect(0, 0, 2, 2).inset(5)
        assert shrunk.width >= 0 and shrunk.height >= 0

    def test_size(self):
        assert Rect(1, 1, 3, 4).size() == Size(3, 4)


class TestCells:
    def test_truncates(self):
        assert as_cells(2.9) == 2

    def test_negative_clamped_to_zero(self):
        assert as_cells(-3) == 0
