"""Hit testing: screen cells → box paths (the device side of TAP)."""

from repro.boxes.tree import Box, make_root
from repro.core import ast
from repro.render.hittest import enclosing_chain, hit_test, node_at
from repro.render.layout import LayoutEngine


def layout():
    root = make_root()
    outer = Box(box_id=1, occurrence=0)
    outer.append_attr("padding", ast.Num(1))
    inner = Box(box_id=2, occurrence=0)
    inner.append_leaf(ast.Str("XX"))
    outer.append_child(inner)
    root.append_child(outer)
    sibling = Box(box_id=3, occurrence=0)
    sibling.append_leaf(ast.Str("YY"))
    root.append_child(sibling)
    return LayoutEngine().layout(root.freeze())


class TestHitTest:
    def test_deepest_box_wins(self):
        node = layout()
        # (1, 1) is inside outer's padding AND the inner box.
        assert hit_test(node, 1, 1) == (0, 0)

    def test_padding_area_belongs_to_outer(self):
        node = layout()
        assert hit_test(node, 0, 0) == (0,)

    def test_sibling(self):
        node = layout()
        inner_height = 3  # outer: 1 padding + 1 text + 1 padding
        assert hit_test(node, 0, inner_height) == (1,)

    def test_miss(self):
        node = layout()
        assert hit_test(node, 99, 99) is None


class TestEnclosingChain:
    def test_chain_deepest_first(self):
        """Section 5's nested selection: repeated taps walk outward."""
        node = layout()
        chain = enclosing_chain(node, 1, 1)
        assert chain == [(0, 0), (0,), ()]

    def test_chain_empty_on_miss(self):
        assert enclosing_chain(layout(), 99, 99) == []


class TestNodeAt:
    def test_found(self):
        node = layout()
        assert node_at(node, (0, 0)).box.box_id == 2

    def test_missing(self):
        assert node_at(layout(), (9, 9)) is None
