"""The HTML backend (TouchDevelop is browser-based)."""

import pytest

from repro.boxes.tree import Box, make_root
from repro.core import ast
from repro.core.effects import STATE
from repro.core.errors import ReproError
from repro.core.types import UNIT
from repro.render.html_backend import (
    box_style,
    render_html,
    render_html_fragment,
)


def tree():
    root = make_root()
    child = Box(box_id=3, occurrence=1)
    child.append_attr("margin", ast.Num(2))
    child.append_attr("background", ast.Str("light blue"))
    child.append_attr(
        "ontap", ast.Lam("u", UNIT, ast.UNIT_VALUE, STATE)
    )
    child.append_leaf(ast.Str("hello <world>"))
    root.append_child(child)
    return root.freeze()


class TestStyles:
    def test_margin_scaled_to_pixels(self):
        box = Box()
        box.append_attr("margin", ast.Num(2))
        assert "margin:16px" in box_style(box)

    def test_background_color_names_normalized(self):
        box = Box()
        box.append_attr("background", ast.Str("light blue"))
        assert "background:lightblue" in box_style(box)

    def test_horizontal_becomes_flex_row(self):
        box = Box()
        box.append_attr("horizontal", ast.Num(1))
        assert "flex-direction:row" in box_style(box)

    def test_default_is_column(self):
        assert "flex-direction:column" in box_style(Box())


class TestFragments:
    def test_nested_divs(self):
        html = render_html_fragment(tree())
        assert html.count("<div") == 2
        assert html.count("</div>") == 2

    def test_text_escaped(self):
        html = render_html_fragment(tree())
        assert "hello &lt;world&gt;" in html
        assert "<world>" not in html

    def test_handlers_as_data_attributes(self):
        html = render_html_fragment(tree())
        assert 'data-ontap="1"' in html

    def test_navigation_metadata_present(self):
        html = render_html_fragment(tree())
        assert 'data-box-id="3"' in html
        assert 'data-occurrence="1"' in html

    def test_rejects_non_box(self):
        with pytest.raises(ReproError):
            render_html_fragment("nope")


class TestDocument:
    def test_complete_document(self):
        html = render_html(tree(), title="demo <page>")
        assert html.startswith("<!DOCTYPE html>")
        assert "<title>demo &lt;page&gt;</title>" in html
        assert html.rstrip().endswith("</html>")
