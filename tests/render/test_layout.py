"""The layout engine: measuring, stacking, margins, the identity cache."""

import pytest

from repro.boxes.tree import Box, make_root
from repro.core import ast
from repro.render.layout import LayoutEngine


def text_box(text, **attrs):
    box = Box(box_id=1, occurrence=0)
    for name, value in attrs.items():
        attr_name = name.replace("_", " ")
        box.append_attr(
            attr_name,
            ast.Str(value) if isinstance(value, str) else ast.Num(value),
        )
    box.append_leaf(ast.Str(text))
    return box


def rooted(*boxes, root_attrs=()):
    root = make_root()
    for name, value in root_attrs:
        root.append_attr(
            name, ast.Str(value) if isinstance(value, str) else ast.Num(value)
        )
    for box in boxes:
        root.append_child(box)
    return root.freeze()


class TestMeasure:
    def test_leaf_measures_text(self):
        engine = LayoutEngine()
        assert engine.measure(text_box("hello")).width == 5
        assert engine.measure(text_box("hello")).height == 1

    def test_vertical_stacking_default(self):
        """'Vertical stacking is the default' (Fig. 3 footnote)."""
        root = rooted(text_box("aa"), text_box("bbbb"))
        size = LayoutEngine().measure(root)
        assert size.width == 4   # max of children
        assert size.height == 2  # sum of children

    def test_horizontal_stacking(self):
        box = Box()
        box.append_attr("horizontal", ast.Num(1))
        box.append_child(text_box("aa"))
        box.append_child(text_box("bbbb"))
        size = LayoutEngine().measure(box)
        assert size.width == 6 and size.height == 1

    def test_margin_padding_border_add_cells(self):
        plain = LayoutEngine().measure(text_box("x"))
        with_margin = LayoutEngine().measure(text_box("x", margin=2))
        with_border = LayoutEngine().measure(text_box("x", border=1))
        with_padding = LayoutEngine().measure(text_box("x", padding=1))
        assert with_margin.width == plain.width + 4
        assert with_border.width == plain.width + 2
        assert with_padding.width == plain.width + 2

    def test_fixed_width(self):
        size = LayoutEngine().measure(text_box("x", width=10))
        assert size.width == 10

    def test_multiline_leaf(self):
        box = Box()
        box.append_leaf(ast.Str("ab\ncdef"))
        size = LayoutEngine().measure(box)
        assert size.width == 4 and size.height == 2


class TestArrange:
    def test_absolute_positions(self):
        root = rooted(text_box("aa"), text_box("bb"))
        node = LayoutEngine().layout(root)
        first, second = node.children
        assert first.rect.y == 0
        assert second.rect.y == 1

    def test_margin_offsets_children(self):
        root = rooted(text_box("aa", margin=1))
        node = LayoutEngine().layout(root)
        child = node.children[0]
        assert child.rect.x == 1 and child.rect.y == 1

    def test_paths_assigned(self):
        inner = text_box("x")
        outer = Box(box_id=2, occurrence=0)
        outer.append_child(inner)
        root = rooted(outer)
        node = LayoutEngine().layout(root)
        assert node.path == ()
        assert node.children[0].path == (0,)
        assert node.children[0].children[0].path == (0, 0)

    def test_device_width_stretches_root(self):
        root = rooted(text_box("x"))
        node = LayoutEngine().layout(root, width=40)
        assert node.rect.width == 40

    def test_text_positions_recorded(self):
        root = rooted(text_box("hi", padding=1))
        node = LayoutEngine().layout(root)
        (x, y, line) = node.children[0].texts[0]
        assert (x, y, line) == (1, 1, "hi")


class TestCache:
    def test_same_object_hits_cache(self):
        engine = LayoutEngine()
        root = rooted(text_box("aaa"), text_box("bbb"))
        engine.layout(root)
        first_misses = engine.cache_misses
        engine.layout(root)
        assert engine.cache_misses == 0
        assert engine.cache_hits >= first_misses

    def test_reused_subtrees_hit_cache(self):
        """The E3 mechanism: diff-reuse + identity cache = less layout."""
        from repro.boxes.diff import reuse

        engine = LayoutEngine()
        old = rooted(text_box("aaa"), text_box("bbb"), text_box("ccc"))
        engine.layout(old)
        new = rooted(text_box("aaa"), text_box("CHANGED"), text_box("ccc"))
        merged = reuse(old, new)
        engine.layout(merged)
        assert engine.cache_hits >= 2  # the two unchanged rows

    def test_invalidate(self):
        engine = LayoutEngine()
        root = rooted(text_box("a"))
        engine.layout(root)
        engine.invalidate()
        engine.layout(root)
        assert engine.cache_misses > 0
