"""Layout invariants on randomized box trees (hypothesis).

The layout engine must uphold, for *any* box tree: children lie inside
their parent's rectangle, siblings never overlap, text runs start inside
their box, and measuring is deterministic.  These are the geometric
guarantees hit-testing (rule TAP's device half) relies on.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.boxes.tree import Box, make_root
from repro.core import ast
from repro.render.hittest import hit_test
from repro.render.layout import LayoutEngine

_SETTINGS = settings(
    max_examples=60, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def box_trees(draw, depth=3):
    """Random frozen box trees with text, attrs and nesting."""
    root = make_root()
    _fill(draw, root, depth)
    return root.freeze()


def _fill(draw, box, depth):
    for _ in range(draw(st.integers(0, 3))):
        kind = draw(
            st.sampled_from(
                ["leaf", "attr"] + (["child"] if depth > 0 else [])
            )
        )
        if kind == "leaf":
            box.append_leaf(ast.Str(draw(st.text(alphabet="ab c", max_size=6))))
        elif kind == "attr":
            name = draw(
                st.sampled_from(
                    ["margin", "padding", "border", "horizontal", "width"]
                )
            )
            box.append_attr(name, ast.Num(float(draw(st.integers(0, 3)))))
        else:
            child = Box(box_id=draw(st.integers(0, 5)), occurrence=0)
            _fill(draw, child, depth - 1)
            box.append_child(child)


def _overlap(a, b):
    return not (
        a.right <= b.x or b.right <= a.x
        or a.bottom <= b.y or b.bottom <= a.y
    )


class TestGeometricInvariants:
    @_SETTINGS
    @given(tree=box_trees())
    def test_children_inside_parent(self, tree):
        node = LayoutEngine().layout(tree)
        for parent in node.walk():
            for child in parent.children:
                assert child.rect.x >= parent.rect.x
                assert child.rect.y >= parent.rect.y
                assert child.rect.right <= parent.rect.right
                assert child.rect.bottom <= parent.rect.bottom

    @_SETTINGS
    @given(tree=box_trees())
    def test_siblings_disjoint(self, tree):
        node = LayoutEngine().layout(tree)
        for parent in node.walk():
            kids = [
                k for k in parent.children
                if k.rect.width > 0 and k.rect.height > 0
            ]
            for i, a in enumerate(kids):
                for b in kids[i + 1:]:
                    assert not _overlap(a.rect, b.rect)

    @_SETTINGS
    @given(tree=box_trees())
    def test_text_starts_inside_its_box(self, tree):
        node = LayoutEngine().layout(tree)
        for box_node in node.walk():
            for x, y, _line in box_node.texts:
                assert box_node.rect.contains(x, y) or not _line

    @_SETTINGS
    @given(tree=box_trees())
    def test_measure_deterministic(self, tree):
        first = LayoutEngine().measure(tree)
        second = LayoutEngine().measure(tree)
        assert first == second

    @_SETTINGS
    @given(tree=box_trees())
    def test_hit_test_agrees_with_rects(self, tree):
        """Whatever hit_test returns must actually contain the point."""
        node = LayoutEngine().layout(tree)
        probes = [(0, 0), (1, 1), (node.rect.width - 1, 0)]
        for x, y in probes:
            path = hit_test(node, x, y)
            if path is None:
                continue
            from repro.render.hittest import node_at

            found = node_at(node, path)
            assert found.rect.contains(x, y)
