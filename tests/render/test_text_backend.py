"""The ASCII screenshot backend."""

import pytest

from repro.boxes.tree import Box, make_root
from repro.core import ast
from repro.core.errors import ReproError
from repro.render.text_backend import (
    Grid,
    render_text,
    shade_for,
)


def labelled(text, **attrs):
    box = Box(box_id=1, occurrence=0)
    for name, value in attrs.items():
        box.append_attr(
            name, ast.Str(value) if isinstance(value, str) else ast.Num(value)
        )
    box.append_leaf(ast.Str(text))
    return box


def display(*boxes):
    root = make_root()
    for box in boxes:
        root.append_child(box)
    return root.freeze()


class TestGrid:
    def test_put_and_render_strips_trailing_space(self):
        grid = Grid(5, 2)
        grid.text(0, 0, "ab")
        assert grid.render() == "ab\n"

    def test_out_of_bounds_ignored(self):
        grid = Grid(2, 2)
        grid.text(0, 0, "abcdef")  # overflows silently
        assert grid.render().split("\n")[0] == "ab"

    def test_frame(self):
        grid = Grid(4, 3)
        from repro.render.geometry import Rect

        grid.frame(Rect(0, 0, 4, 3))
        lines = grid.render().split("\n")
        assert lines[0] == "+--+"
        assert lines[1] == "|  |"
        assert lines[2] == "+--+"


class TestRenderText:
    def test_posts_appear(self):
        shot = render_text(display(labelled("hello")), width=10)
        assert "hello" in shot

    def test_border_drawn(self):
        shot = render_text(display(labelled("hi", border=1)), width=10)
        assert "+--+" in shot and "|hi|" in shot

    def test_background_shading(self):
        """The I3 improvement's visibility: light blue rows shade as ░."""
        shot = render_text(
            display(labelled("row", background="light blue", width=6)),
            width=10,
        )
        assert "░" in shot

    def test_unknown_color_gets_generic_shade(self):
        assert shade_for("octarine") == "░"
        assert shade_for("") == " "

    def test_selection_frame(self):
        """The Fig. 2 red outline becomes a # frame."""
        shot = render_text(
            display(labelled("pick me", border=0)),
            width=16,
            selected_paths=[(0,)],
        )
        assert "#" in shot

    def test_vertical_order(self):
        shot = render_text(
            display(labelled("first"), labelled("second")), width=12
        )
        assert shot.index("first") < shot.index("second")

    def test_horizontal_layout(self):
        row = Box()
        row.append_attr("horizontal", ast.Num(1))
        row.append_child(labelled("aa"))
        row.append_child(labelled("bb"))
        shot = render_text(display(row), width=10)
        assert "aabb" in shot

    def test_rejects_non_box(self):
        with pytest.raises(ReproError):
            render_text("not a box")
