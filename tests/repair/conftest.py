"""Shared fixtures for the live-repair suite.

``COUNTER`` is the quickstart counter; ``RENDER_BROKEN`` divides by zero
in the render body (the supervisor rolls such an update back — the
rollback repair trigger), ``TAP_BROKEN`` divides by zero inside a tap
handler (applies cleanly, then faults on live traffic — the breaker
trigger).
"""

import pytest

from repro.apps.counter import SOURCE as COUNTER

RENDER_BROKEN = COUNTER.replace(
    'post "count: " || count',
    'post "count: " || count / (count - count)',
)

TAP_BROKEN = COUNTER.replace(
    "count := count + 1",
    "count := count / (count - count)",
)

assert RENDER_BROKEN != COUNTER
assert TAP_BROKEN != COUNTER

SESSION_KWARGS = {"fault_policy": "record", "supervised": True}


@pytest.fixture
def journal_dir(tmp_path):
    return str(tmp_path / "journal")


def make_host(journal_dir=None, source=COUNTER, **kwargs):
    from repro.obs.trace import Tracer
    from repro.resilience.journal import Journal
    from repro.serve.host import SessionHost

    kwargs.setdefault("session_kwargs", dict(SESSION_KWARGS))
    kwargs.setdefault("tracer", Tracer())
    journal = Journal(journal_dir) if journal_dir is not None else None
    return SessionHost(default_source=source, journal=journal, **kwargs)
