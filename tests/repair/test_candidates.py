"""Candidate generation: the repair search space."""

import pytest

from repro.repair import CandidateEdit, changed_decl_names, generate_candidates

from .conftest import COUNTER, RENDER_BROKEN, TAP_BROKEN


def test_generates_all_three_kinds():
    candidates = generate_candidates(
        RENDER_BROKEN, last_good_source=COUNTER
    )
    kinds = {c.kind for c in candidates}
    assert kinds == {"delete_statement", "hole", "revert_decl"}


def test_candidates_are_unique_and_exclude_the_faulting_source():
    candidates = generate_candidates(
        RENDER_BROKEN, last_good_source=COUNTER
    )
    sources = [c.source for c in candidates]
    assert RENDER_BROKEN not in sources
    assert len(sources) == len(set(sources))


def test_candidates_ordered_smallest_edit_first():
    candidates = generate_candidates(RENDER_BROKEN)
    sizes = [c.edit_size for c in candidates]
    assert sizes == sorted(sizes)


def test_post_hole_posts_a_question_mark():
    candidates = generate_candidates(RENDER_BROKEN)
    holes = [c for c in candidates if c.kind == "hole"]
    assert any('post "?"' in c.source for c in holes)


def test_assign_hole_is_a_self_assignment():
    candidates = generate_candidates(TAP_BROKEN)
    holes = [c for c in candidates if c.kind == "hole"]
    assert any("count := count\n" in c.source for c in holes)


def test_revert_candidate_targets_the_changed_decl():
    candidates = generate_candidates(
        RENDER_BROKEN, last_good_source=COUNTER
    )
    reverts = [c for c in candidates if c.kind == "revert_decl"]
    assert len(reverts) == 1
    assert reverts[0].target == "start"
    # Reverting the only changed declaration restores the good program.
    assert reverts[0].source.rstrip() == COUNTER.rstrip()


def test_identical_last_good_yields_no_reverts():
    candidates = generate_candidates(
        RENDER_BROKEN, last_good_source=RENDER_BROKEN
    )
    assert not any(c.kind == "revert_decl" for c in candidates)


def test_suspects_filter_restricts_statement_candidates():
    focused = generate_candidates(RENDER_BROKEN, suspects=("start",))
    assert focused
    assert all(c.target == "start" for c in focused)
    assert generate_candidates(RENDER_BROKEN, suspects=("elsewhere",)) == []


def test_max_candidates_truncates():
    everything = generate_candidates(RENDER_BROKEN)
    assert len(everything) > 3
    capped = generate_candidates(RENDER_BROKEN, max_candidates=3)
    assert capped == everything[:3]


def test_generation_is_deterministic():
    first = generate_candidates(RENDER_BROKEN, last_good_source=COUNTER)
    second = generate_candidates(RENDER_BROKEN, last_good_source=COUNTER)
    assert first == second


def test_unparsable_source_yields_no_candidates():
    assert generate_candidates("page (((") == []


def test_candidate_edit_is_frozen():
    candidate = generate_candidates(RENDER_BROKEN)[0]
    assert isinstance(candidate, CandidateEdit)
    with pytest.raises(Exception):
        candidate.kind = "other"


def test_changed_decl_names_diffs_declarations():
    assert changed_decl_names(COUNTER, RENDER_BROKEN) == ("start",)
    assert changed_decl_names(COUNTER, COUNTER) == ()


def test_changed_decl_names_survives_syntax_errors():
    assert changed_decl_names(COUNTER, "page (((") == ()
    assert changed_decl_names("page (((", COUNTER) == ()
