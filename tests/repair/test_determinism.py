"""Property: the repair ranking is a pure function of its inputs.

Worker-thread scheduling affects which thread validates which
candidate and how long each takes — it must never affect the *order*.
The journal is built under seeded chaos (a :class:`FaultPlan` injecting
evaluation faults into live traffic), so the recorded history the
searcher replays varies by seed; for every seed, two independent
searches over the same journal must rank identically.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import ReproError
from repro.repair import RepairBudget, search_repairs
from repro.resilience import FaultInjector, FaultPlan
from repro.resilience.journal import Journal

from .conftest import COUNTER, RENDER_BROKEN, SESSION_KWARGS, make_host

_SETTINGS = settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def ranking(report):
    """The order-relevant fields (timing excluded by construction)."""
    return [
        (c.kind, c.source, c.validated, c.events_ok, c.edit_size)
        for c in report.candidates
    ]


def build_journal(tmp_path, seed, taps):
    journal_dir = str(tmp_path / "journal-{}".format(seed))
    kwargs = dict(SESSION_KWARGS)
    kwargs["chaos"] = FaultInjector(
        FaultPlan(seed=seed, rates={"eval": 0.3}, max_faults=4)
    )
    host = make_host(journal_dir, session_kwargs=kwargs)
    token = host.create(source=COUNTER)
    for which in taps:
        try:
            host.tap(token, text="reset" if which else "count: 0")
        except ReproError:
            pass  # the counter moved on; the attempt is still journaled
    result = host.edit_source(token, RENDER_BROKEN)
    assert result.status == "rolled_back"
    return journal_dir, token


@given(
    seed=st.integers(min_value=0, max_value=2 ** 16),
    taps=st.lists(st.booleans(), min_size=1, max_size=6),
)
@_SETTINGS
def test_same_inputs_rank_identically(tmp_path_factory, seed, taps):
    tmp_path = tmp_path_factory.mktemp("repair-det")
    journal_dir, token = build_journal(tmp_path, seed, taps)
    reports = [
        search_repairs(
            Journal(journal_dir), token,
            faulting_source=RENDER_BROKEN,
            last_good_source=COUNTER,
            suspects=("start",),
            trigger="rollback",
            budget=RepairBudget(max_candidates=8, window=10, parallelism=4),
        )
        for _ in range(2)
    ]
    assert ranking(reports[0]) == ranking(reports[1])
    assert reports[0].generated == reports[1].generated
    assert reports[0].searched == reports[1].searched


@given(seed=st.integers(min_value=0, max_value=2 ** 16))
@_SETTINGS
def test_parallelism_does_not_change_the_ranking(tmp_path_factory, seed):
    tmp_path = tmp_path_factory.mktemp("repair-par")
    journal_dir, token = build_journal(tmp_path, seed, [True, False, True])
    reports = [
        search_repairs(
            Journal(journal_dir), token,
            faulting_source=RENDER_BROKEN,
            last_good_source=COUNTER,
            suspects=("start",),
            budget=RepairBudget(
                max_candidates=8, window=10, parallelism=parallelism
            ),
        )
        for parallelism in (1, 4)
    ]
    assert ranking(reports[0]) == ranking(reports[1])
