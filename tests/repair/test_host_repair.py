"""Repair wired into the host and the wire protocol."""

import json

import pytest

from repro.core.errors import ReproError
from repro.repair import RepairBudget
from repro.serve.protocol import handle_request

from .conftest import COUNTER, RENDER_BROKEN, TAP_BROKEN, make_host

WAIT = 60  # generous join timeout; searches finish in well under a second

BUDGET = RepairBudget(max_candidates=8, window=10, parallelism=2)


def call(host, **request):
    response = handle_request(host, request)
    json.dumps(response)  # every envelope must be JSON-clean
    return response


class TestRollbackTrigger:
    def test_rolled_back_update_launches_a_search(self, journal_dir):
        host = make_host(journal_dir, repair=BUDGET)
        token = host.create(source=COUNTER)
        for _ in range(3):
            host.tap(token, text="reset")
        result = host.edit_source(token, RENDER_BROKEN)
        assert result.status == "rolled_back"
        # The launch is asynchronous: edit_source returned before the
        # report exists, so the state is searching (or already ready).
        assert host.repair_info(token)["status"] in ("searching", "ready")
        info = host.repair_wait(token, WAIT)
        assert info["status"] == "ready"
        assert info["trigger"] == "rollback" and info["found"]
        assert info["repairs"][0]["validated"]
        assert info["fault"]["type"] == "EvalError"

    def test_apply_routes_through_the_supervised_edit_path(
        self, journal_dir
    ):
        host = make_host(journal_dir, repair=BUDGET)
        token = host.create(source=COUNTER)
        host.tap(token, text="reset")
        host.edit_source(token, RENDER_BROKEN)
        host.repair_wait(token, WAIT)
        result, candidate = host.repair_apply(token, 1)
        assert result.status == "applied"
        assert candidate.validated and candidate.rank == 1
        html, _generation, modified = host.render(token)
        assert modified and html
        assert host.metrics()["repair.applied"] == 1

    def test_repair_true_uses_the_default_budget(self, journal_dir):
        host = make_host(journal_dir, repair=True)
        assert isinstance(host.repair, RepairBudget)

    def test_apply_without_a_report_is_refused(self, journal_dir):
        host = make_host(journal_dir, repair=BUDGET)
        token = host.create(source=COUNTER)
        with pytest.raises(ReproError):
            host.repair_apply(token, 1)

    def test_no_search_without_opt_in(self, journal_dir):
        host = make_host(journal_dir)  # repair=None
        token = host.create(source=COUNTER)
        host.edit_source(token, RENDER_BROKEN)
        assert host.repair_info(token) == {"status": "none"}


class TestBreakerTrigger:
    def make_faulting(self, journal_dir):
        host = make_host(
            journal_dir, source=TAP_BROKEN,
            repair=BUDGET, quarantine_after=2,
        )
        token = host.create()
        for _ in range(2):
            host.tap(token, text="count: 0")  # handler divides by zero
        assert host.is_quarantined(token)
        return host, token

    def test_open_breaker_launches_a_search(self, journal_dir):
        host, token = self.make_faulting(journal_dir)
        info = host.repair_wait(token, WAIT)
        assert info["status"] == "ready"
        assert info["trigger"] == "breaker" and info["found"]

    def test_degraded_detail_names_the_fault(self, journal_dir):
        host, token = self.make_faulting(journal_dir)
        detail = host.degraded_detail(token)
        assert detail["fault_streak"] == 2
        assert "division" in detail["error"]
        assert detail["during"] == "EVENT"
        assert "vtimestamp" in detail

    def test_applying_the_repair_closes_the_breaker(self, journal_dir):
        host, token = self.make_faulting(journal_dir)
        host.repair_wait(token, WAIT)
        result, _candidate = host.repair_apply(token, 1)
        assert result.status == "applied"
        assert not host.is_quarantined(token)
        host.tap(token, text="count: 0")  # interactive again


class TestRepairProtocol:
    def faulting_host(self, journal_dir):
        host = make_host(journal_dir, repair=BUDGET)
        created = call(host, op="create", source=COUNTER)
        token = created["token"]
        call(host, op="tap", token=token, text="reset")
        return host, token

    def test_rolled_back_edit_carries_repair_state(self, journal_dir):
        host, token = self.faulting_host(journal_dir)
        response = call(
            host, op="edit_source", token=token, source=RENDER_BROKEN
        )
        assert response["status"] == "rolled_back"
        assert response["repair"]["status"] in ("searching", "ready")

    def test_wait_then_apply_round_trip(self, journal_dir):
        host, token = self.faulting_host(journal_dir)
        call(host, op="edit_source", token=token, source=RENDER_BROKEN)
        waited = call(host, op="repair", token=token, wait=WAIT)
        assert waited["ok"] and waited["found"]
        assert waited["repairs"] == sorted(
            waited["repairs"], key=lambda r: r["rank"]
        )
        applied = call(host, op="repair", token=token, apply=1)
        assert applied["ok"] and applied["applied"]
        assert applied["status"] == "applied"
        rendered = call(host, op="render", token=token)
        assert rendered["ok"] and rendered["html"]

    def test_synchronous_search_op_with_budget(self, journal_dir):
        host, token = self.faulting_host(journal_dir)
        call(host, op="edit_source", token=token, source=RENDER_BROKEN)
        call(host, op="repair", token=token, wait=WAIT)  # drain auto search
        response = call(
            host, op="repair", token=token, search=True,
            budget={"max_candidates": 4, "window": 5},
        )
        assert response["ok"] and response["found"]
        assert response["generated"] <= 4

    def test_degraded_render_carries_fault_and_repair(self, journal_dir):
        host = make_host(
            journal_dir, source=TAP_BROKEN,
            repair=BUDGET, quarantine_after=2,
        )
        token = call(host, op="create")["token"]
        for _ in range(2):
            call(host, op="tap", token=token, text="count: 0")
        response = call(host, op="render", token=token)
        assert response["degraded"]
        assert response["fault"]["fault_streak"] == 2
        assert response["repair"]["status"] in ("searching", "ready")

    def test_bad_apply_ranks_are_typed_errors(self, journal_dir):
        host, token = self.faulting_host(journal_dir)
        call(host, op="edit_source", token=token, source=RENDER_BROKEN)
        call(host, op="repair", token=token, wait=WAIT)
        assert call(
            host, op="repair", token=token, apply=True
        )["error"]["type"] == "BadRequest"
        assert not call(host, op="repair", token=token, apply=999)["ok"]

    def test_bad_budget_spec_is_a_bad_request(self, journal_dir):
        host, token = self.faulting_host(journal_dir)
        response = call(
            host, op="repair", token=token, search=True,
            budget={"no_such_knob": 1},
        )
        assert response["error"]["type"] == "BadRequest"
