"""The searcher end-to-end: journaled traffic, isolated validation."""

import pytest

from repro.core.errors import ReproError
from repro.repair import RepairBudget, RepairReport, search_repairs
from repro.resilience import truncate_journal
from repro.resilience.journal import Journal

from .conftest import COUNTER, RENDER_BROKEN, make_host


def faulting_host(journal_dir, taps=4):
    """A journaled host whose session just had an UPDATE rolled back."""
    host = make_host(journal_dir)
    token = host.create(source=COUNTER)
    for _ in range(taps):
        host.tap(token, text="reset")
    result = host.edit_source(token, RENDER_BROKEN)
    assert result.status == "rolled_back"
    return host, token


def test_search_finds_a_validated_repair(journal_dir):
    host, token = faulting_host(journal_dir)
    report = search_repairs(
        host.journal, token,
        faulting_source=RENDER_BROKEN,
        last_good_source=COUNTER,
        suspects=("start",),
        trigger="rollback",
        budget=RepairBudget(max_candidates=8, window=10, parallelism=2),
    )
    assert report.found
    assert report.trigger == "rollback"
    assert report.generated >= report.searched > 0
    best = report.best()
    assert best is not None and best.rank == 1 and best.validated
    assert best.events_replayed > 0
    assert best.events_ok == best.events_replayed
    # Ranks are 1..n and validated candidates sort strictly first.
    assert [c.rank for c in report.candidates] == list(
        range(1, len(report.candidates) + 1)
    )
    flags = [c.validated for c in report.candidates]
    assert flags == sorted(flags, reverse=True)


def test_best_repair_applies_and_heals_the_session(journal_dir):
    host, token = faulting_host(journal_dir)
    report = search_repairs(
        host.journal, token,
        faulting_source=RENDER_BROKEN,
        last_good_source=COUNTER,
        suspects=("start",),
        budget=RepairBudget(max_candidates=8, window=10),
    )
    result = host.edit_source(token, report.best().source)
    assert result.status == "applied"
    html, _generation, modified = host.render(token)
    assert modified and html
    host.tap(token, text="reset")  # traffic flows again


def test_search_survives_a_torn_journal(journal_dir):
    host, token = faulting_host(journal_dir)
    # Tear the journal tail mid-search-setup (crash semantics): the torn
    # record was never acknowledged, so the searcher must treat the
    # journal as if it ended at the last intact record — not crash.
    truncate_journal(host.journal.path, drop_bytes=16)
    report = search_repairs(
        Journal(journal_dir), token,
        faulting_source=RENDER_BROKEN,
        last_good_source=COUNTER,
        suspects=("start",),
        budget=RepairBudget(max_candidates=8, window=10),
    )
    assert isinstance(report, RepairReport)
    assert report.found


def test_exhausted_wall_budget_reports_without_crashing(journal_dir):
    host, token = faulting_host(journal_dir)
    report = search_repairs(
        host.journal, token,
        faulting_source=RENDER_BROKEN,
        last_good_source=COUNTER,
        budget=RepairBudget(wall_seconds=1e-9),
    )
    assert report.budget_exhausted
    assert report.searched < report.generated


def test_max_candidates_caps_the_search(journal_dir):
    host, token = faulting_host(journal_dir, taps=1)
    report = search_repairs(
        host.journal, token,
        faulting_source=RENDER_BROKEN,
        last_good_source=COUNTER,
        budget=RepairBudget(max_candidates=2, window=5),
    )
    assert report.generated <= 2
    assert report.searched <= 2


def test_search_without_a_journal_validates_on_fresh_sessions():
    report = search_repairs(
        faulting_source=RENDER_BROKEN,
        last_good_source=COUNTER,
        suspects=("start",),
        budget=RepairBudget(max_candidates=8),
    )
    assert report.found
    assert report.candidates[0].events_replayed == 0


def test_search_counts_and_observes_through_the_hooks(journal_dir):
    host, token = faulting_host(journal_dir, taps=1)
    seen = []
    search_repairs(
        host.journal, token,
        faulting_source=RENDER_BROKEN,
        last_good_source=COUNTER,
        suspects=("start",),
        budget=RepairBudget(max_candidates=6, window=5),
        count=lambda name, n=1: seen.append(name),
        observe=lambda name, value: seen.append(name),
    )
    for name in (
        "repair.searches", "repair.candidates_generated",
        "repair.candidates_validated", "repair.found",
        "repair.first_valid", "repair.search",
    ):
        assert name in seen


def test_report_candidate_rejects_unknown_ranks():
    report = RepairReport(token="t", trigger="manual")
    with pytest.raises(ReproError):
        report.candidate(1)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_candidates": 0},
        {"parallelism": 0},
        {"window": -1},
    ],
)
def test_budget_validates_its_limits(kwargs):
    with pytest.raises(ReproError):
        RepairBudget(**kwargs)
