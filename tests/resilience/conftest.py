"""Shared apps and helpers for the resilience suite.

``CRASHY`` is a counter with three buttons: one that works, one whose
handler divides by zero, and one that poisons a global so the *render*
divides by zero (the fault screen path).  ``DOWNLOADING`` charges
virtual latency through the simulated web — the deadline tests' clock
source.
"""

import pytest

CRASHY = (
    "global d : number = 1\n"
    "global count : number = 0\n"
    "page start()\n  render\n    boxed\n      post \"n = \" || 10 / d\n"
    "      on tap do\n        d := 0\n"
    "    boxed\n      post \"crash\"\n"
    "      on tap do\n        d := 1 / 0\n"
    "    boxed\n      post \"bump\"\n"
    "      on tap do\n        count := count + 1\n"
)

DOWNLOADING = (
    "extern fun fetch_listings() : list number is state\n"
    "global data : list number = nil(number)\n"
    "page start()\n  render\n    boxed\n      post \"n = \" || length(data)\n"
    "      on tap do\n        data := fetch_listings()\n"
)


def downloading_impls():
    def fetch(services):
        services.get("web").fetch("/listings")
        return [1.0, 2.0, 3.0]

    return {"fetch_listings": fetch}


@pytest.fixture
def journal_dir(tmp_path):
    return str(tmp_path / "journal")
