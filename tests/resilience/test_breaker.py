"""The per-session circuit breaker in the SessionHost."""

import pytest

from repro.core.errors import ReproError, SessionQuarantined
from repro.api import Tracer
from repro.serve.host import SessionHost

from .conftest import CRASHY

FIXED = CRASHY.replace("1 / 0", "1")


def make_host(quarantine_after=3, **kwargs):
    kwargs.setdefault("session_kwargs", {"fault_policy": "record"})
    return SessionHost(
        pool_size=4,
        default_source=CRASHY,
        tracer=Tracer(),
        quarantine_after=quarantine_after,
        **kwargs
    )


def crash(host, token, times):
    for _ in range(times):
        host.tap(token, text="crash")


class TestBreaker:
    def test_threshold_validated(self):
        with pytest.raises(ReproError):
            make_host(quarantine_after=0)

    def test_consecutive_faults_quarantine(self):
        host = make_host()
        token = host.create()
        crash(host, token, 2)
        assert not host.is_quarantined(token)
        crash(host, token, 1)
        assert host.is_quarantined(token)
        assert host.metrics()["sessions_quarantined"] == 1
        assert host.stats()["quarantined"] == 1

    def test_a_clean_op_resets_the_count(self):
        host = make_host()
        token = host.create()
        crash(host, token, 2)
        host.tap(token, text="bump")       # clean: the streak breaks
        crash(host, token, 2)
        assert not host.is_quarantined(token)

    def test_quarantined_ops_are_refused_typed(self):
        host = make_host()
        token = host.create()
        crash(host, token, 3)
        with pytest.raises(SessionQuarantined):
            host.tap(token, text="bump")
        with pytest.raises(SessionQuarantined):
            host.batch(token, [("back",)])

    def test_quarantined_render_serves_last_good_degraded(self):
        host = make_host()
        token = host.create()
        html_before, generation, _ = host.render(token)
        crash(host, token, 3)
        html, after_generation, modified = host.render(token)
        assert modified and html == html_before
        assert after_generation == generation
        # ...and the 304 path still works while degraded.
        none_html, _, not_modified = host.render(
            token, if_generation=generation
        )
        assert none_html is None and not not_modified

    def test_edit_source_is_the_repair_path(self):
        host = make_host()
        token = host.create()
        crash(host, token, 3)
        assert host.is_quarantined(token)
        result = host.edit_source(token, FIXED)
        assert result.applied
        assert not host.is_quarantined(token)
        # Interactive again:
        assert host.tap(token, text="bump") == "start"

    def test_a_rejected_repair_keeps_the_breaker_open(self):
        host = make_host()
        token = host.create()
        crash(host, token, 3)
        result = host.edit_source(token, "page start(\n")
        assert not result.applied
        assert host.is_quarantined(token)

    def test_a_rejected_edit_does_not_break_the_streak(self):
        # A rejected edit never touched the runtime, so interleaving
        # rejected edits between faults must not keep resetting the
        # count and hold a faulty session out of quarantine forever.
        host = make_host()
        token = host.create()
        for _ in range(3):
            host.tap(token, text="crash")
            result = host.edit_source(token, "page start(\n")
            assert result.status == "rejected"
        assert host.is_quarantined(token)

    def test_quarantine_message_survives_rejected_edits(self):
        # On an open breaker, a rejected edit must not zero the streak
        # the refusal message reports.
        host = make_host()
        token = host.create()
        crash(host, token, 3)
        host.edit_source(token, "page start(\n")
        with pytest.raises(SessionQuarantined) as caught:
            host.tap(token, text="bump")
        assert "3 consecutive" in str(caught.value)

    def test_breaker_counts_raise_policy_faults_too(self):
        # Under "raise" a fault propagates to the client *and* trips the
        # breaker (with threshold 1 here: one strike quarantines — under
        # "raise" the faulted session cannot settle for another strike).
        from repro.core.errors import EvalError

        host = make_host(
            quarantine_after=1,
            session_kwargs={"fault_policy": "raise"},
        )
        token = host.create()
        with pytest.raises(EvalError):
            host.tap(token, text="crash")
        assert host.is_quarantined(token)

    def test_eviction_does_not_launder_the_record(self):
        host = make_host()
        token = host.create()
        crash(host, token, 3)
        assert host.evict(token)
        assert host.is_quarantined(token)
        with pytest.raises(SessionQuarantined):
            host.tap(token, text="bump")

    def test_quarantine_disabled_with_none(self):
        host = make_host(quarantine_after=None)
        token = host.create()
        crash(host, token, 10)
        assert not host.is_quarantined(token)


class TestFaultPersistence:
    def test_faults_round_trip_through_the_image(self):
        # satellite: evict → rehydrate must not launder the fault record.
        from repro.persist import load_image, save_image

        host = make_host()
        token = host.create()
        crash(host, token, 2)
        image = host.snapshot(token)
        assert len(image["faults"]) == 2
        assert "division by zero" in image["faults"][0]["error"]
        restored = load_image(image, fault_policy="record")
        assert len(restored.runtime.faults) == 2
        assert restored.runtime.faults[0].during == "EVENT"
        # ...and saving again carries them forward unchanged.
        assert len(save_image(restored)["faults"]) == 2
