"""Per-transition budgets: fuel caps and virtual-clock deadlines."""

import pytest

from repro.core.errors import DeadlineExceeded, FuelExhausted, ReproError
from repro.live.session import LiveSession
from repro.resilience import UNLIMITED, Budget
from repro.stdlib.web import make_services

from .conftest import CRASHY, DOWNLOADING, downloading_impls


class TestBudget:
    def test_defaults_are_unlimited(self):
        assert UNLIMITED.deadline is None
        assert UNLIMITED.fuel >= 1_000_000

    def test_validation(self):
        with pytest.raises(ReproError):
            Budget(fuel=0)
        with pytest.raises(ReproError):
            Budget(deadline=-1.0)

    def test_fuel_budget_trips_on_expensive_render(self):
        # A tiny fuel allowance: even booting the page blows it.
        with pytest.raises(FuelExhausted):
            LiveSession(CRASHY, budget=Budget(fuel=5))

    def test_fuel_budget_roomy_enough_passes(self):
        session = LiveSession(CRASHY, budget=Budget(fuel=100_000))
        assert session.runtime.contains_text("bump")

    def test_deadline_trips_on_slow_download(self):
        session = LiveSession(
            DOWNLOADING,
            host_impls=downloading_impls(),
            services=make_services(latency=5.0),
            budget=Budget(deadline=1.0),
        )
        with pytest.raises(DeadlineExceeded):
            session.tap_text("n = 0")

    def test_deadline_is_per_transition_not_cumulative(self):
        # Each tap charges 0.5 virtual seconds — under a 1.0 deadline
        # every single transition fits, however many there are.
        session = LiveSession(
            DOWNLOADING,
            host_impls=downloading_impls(),
            services=make_services(latency=0.5),
            budget=Budget(deadline=1.0),
        )
        for label in ("n = 0", "n = 3", "n = 3"):
            session.tap_text(label)
        assert session.runtime.system.services.clock.now == 1.5

    def test_record_policy_logs_a_blown_deadline(self):
        session = LiveSession(
            DOWNLOADING,
            host_impls=downloading_impls(),
            services=make_services(latency=5.0),
            budget=Budget(deadline=1.0),
            fault_policy="record",
        )
        session.tap_text("n = 0")
        assert len(session.runtime.faults) == 1
        assert isinstance(session.runtime.faults[0].error, DeadlineExceeded)
        # Still alive — and the handler's effects are kept: the deadline
        # is detected after the transition, not by aborting it ("partial
        # execution is kept", exactly like any other recorded fault).
        assert session.runtime.contains_text("n = 3")


class TestFaultTimestamps:
    def test_fault_records_virtual_time(self):
        # satellite: Fault carries the virtual clock, which is
        # deterministic — the wall clock is not.
        session = LiveSession(
            DOWNLOADING,
            host_impls=downloading_impls(),
            services=make_services(latency=5.0),
            budget=Budget(deadline=1.0),
            fault_policy="record",
        )
        session.tap_text("n = 0")
        fault = session.runtime.faults[0]
        assert fault.timestamp > 0.0         # wall clock
        assert fault.vtimestamp == 5.0       # virtual clock, deterministic
