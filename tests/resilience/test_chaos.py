"""Deterministic fault injection across every layer.

The acceptance bar: at least five distinct fault categories —
injected evaluation faults, fuel exhaustion, service unavailability,
slow I/O blowing a deadline, HTTP refusal (covered in
``test_fault_policy_server``), and torn journals (``test_recovery``) —
each proving the recovery path it targets.
"""

import pytest

from repro.core.errors import (
    DeadlineExceeded,
    FuelExhausted,
    InjectedFault,
    ReproError,
)
from repro.live.session import LiveSession
from repro.api import Tracer
from repro.resilience import Budget, FaultInjector, FaultPlan
from repro.stdlib.web import make_services

from .conftest import CRASHY, DOWNLOADING, downloading_impls


class TestFaultPlan:
    def test_unknown_point_rejected(self):
        with pytest.raises(ReproError):
            FaultPlan(rates={"disk": 1.0})

    def test_rate_range_validated(self):
        with pytest.raises(ReproError):
            FaultPlan(rates={"eval": 1.5})

    def test_decisions_are_deterministic(self):
        plan = FaultPlan(seed=7, rates={"eval": 0.5, "service": 0.3})
        runs = []
        for _ in range(2):
            injector = FaultInjector(plan)
            runs.append(
                [injector.should_fail("eval") for _ in range(50)]
                + [injector.should_fail("service") for _ in range(50)]
            )
        assert runs[0] == runs[1]
        assert any(runs[0])

    def test_streams_are_independent_per_point(self):
        plan = FaultPlan(seed=7, rates={"eval": 0.5, "service": 0.5})
        a = FaultInjector(plan)
        interleaved = [a.should_fail("eval") for _ in range(20)]
        # Drawing from "service" in between must not shift "eval".
        b = FaultInjector(plan)
        shifted = []
        for _ in range(20):
            b.should_fail("service")
            shifted.append(b.should_fail("eval"))
        assert interleaved == shifted

    def test_max_faults_caps_injections(self):
        injector = FaultInjector(
            FaultPlan(rates={"eval": 1.0}, max_faults=2)
        )
        fired = [injector.should_fail("eval") for _ in range(10)]
        assert fired.count(True) == 2
        assert injector.total == 2

    def test_counts_and_tracer(self):
        tracer = Tracer()
        injector = FaultInjector(
            FaultPlan(rates={"eval": 1.0}), tracer=tracer
        )
        with pytest.raises(InjectedFault):
            injector.maybe_raise("eval", "boom")
        assert injector.counts["eval"] == 1
        assert tracer.metrics()["faults_injected"] == 1


def chaotic_session(rates, fault_policy="record", budget=None, plan=None,
                    **plan_kwargs):
    plan = plan or FaultPlan(rates=rates, **plan_kwargs)
    injector = FaultInjector(plan, tracer=Tracer())
    session = LiveSession(
        DOWNLOADING,
        host_impls=downloading_impls(),
        services=make_services(latency=0.1),
        fault_policy=fault_policy,
        budget=budget,
        chaos=injector,
        tracer=injector.tracer,
    )
    return session, injector


class TestChaosCategories:
    def test_eval_faults_are_recorded_and_session_lives(self):
        session, injector = chaotic_session(
            {"eval": 0.3}, max_faults=3
        )
        for _ in range(20):
            if injector.total >= 3:
                break
            try:
                session.tap((0,))
            except ReproError:
                # An injected *render* fault put the fault screen up
                # (no handlers); a live edit repaints past it.
                session.edit_source(DOWNLOADING)
        assert injector.counts["eval"] == 3
        faults = [
            fault for fault in session.runtime.faults
            if isinstance(fault.error, InjectedFault)
        ]
        assert len(faults) >= 1
        # The injector and the runtime agree in the shared metrics.
        metrics = session.runtime.metrics()
        assert metrics["faults_injected"] == 3

    def test_fuel_squeeze_exhausts_real_work(self):
        # rate 1.0: the squeeze fires on the very first evaluator run —
        # the boot render — and the machine itself runs out of fuel
        # mid-flight, exactly like a genuine runaway program.
        with pytest.raises(FuelExhausted):
            chaotic_session(
                {"fuel": 1.0}, fault_policy="raise", fuel_squeeze=3,
            )

    def test_fuel_squeeze_recorded_keeps_the_session_alive(self):
        session, injector = chaotic_session(
            {"fuel": 1.0}, fuel_squeeze=3, max_faults=1,
        )
        assert injector.counts["fuel"] == 1
        assert any(
            isinstance(fault.error, FuelExhausted)
            for fault in session.runtime.faults
        )
        # The one allowed injection is spent; a live edit repaints.
        session.edit_source(DOWNLOADING)
        assert session.runtime.contains_text("n = 0")

    def test_service_unavailable_faults_the_handler(self):
        session, injector = chaotic_session(
            {"service": 1.0}, max_faults=1
        )
        session.tap_text("n = 0")  # the handler's fetch hits the wall
        assert injector.counts["service"] == 1
        assert any(
            isinstance(fault.error, InjectedFault)
            and "service" in str(fault.error)
            for fault in session.runtime.faults
        )
        # The session survived; the handler's fetch never completed.
        assert session.runtime.contains_text("n = 0")

    def test_slow_io_blows_the_deadline(self):
        session, injector = chaotic_session(
            {"slow_io": 1.0},
            budget=Budget(deadline=1.0),
            max_faults=1,
            slow_io_seconds=30.0,
        )
        session.tap_text("n = 0")
        assert injector.counts["slow_io"] == 1
        assert any(
            isinstance(fault.error, DeadlineExceeded)
            for fault in session.runtime.faults
        )

    def test_no_rates_no_faults(self):
        session, injector = chaotic_session({})
        for _ in range(5):
            session.tap((0,))
        assert injector.total == 0
        assert session.runtime.faults == []
        assert session.runtime.contains_text("n = 3")
