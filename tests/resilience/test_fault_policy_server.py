"""Faults through the whole server stack: typed errors, never a 500.

Satellite coverage: ``fault_policy="record"`` end-to-end over HTTP (a
faulting handler keeps the session live and the fault screen
round-trips through the ``snapshot`` op), the typed protocol error
taxonomy (``EvalFault`` / ``FuelExhausted`` / ``UpdateRejected`` with
span ids) for ``fault_policy="raise"``, and the HTTP chaos point's
typed 503.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import Tracer
from repro.resilience import Budget, FaultInjector, FaultPlan
from repro.serve.app import make_server
from repro.serve.host import SessionHost

from .conftest import CRASHY

BROKEN = CRASHY.replace("count + 1", 'count + "no"')


def start_server(session_kwargs, chaos=None, quarantine_after=3):
    host = SessionHost(
        pool_size=4,
        default_source=CRASHY,
        tracer=Tracer(),
        quarantine_after=quarantine_after,
        session_kwargs=session_kwargs,
    )
    server = make_server(host, chaos=chaos)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return host, server, thread


def stop_server(server, thread):
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture
def record_server():
    host, server, thread = start_server(
        {"fault_policy": "record", "supervised": True}
    )
    yield host, server
    stop_server(server, thread)


@pytest.fixture
def raise_server():
    host, server, thread = start_server({"fault_policy": "raise"})
    yield host, server
    stop_server(server, thread)


def post(server, payload):
    request = urllib.request.Request(
        "http://127.0.0.1:{}/".format(server.server_address[1]),
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


class TestRecordPolicyEndToEnd:
    def test_faulting_handler_keeps_the_session_live(self, record_server):
        host, server = record_server
        token = post(server, {"op": "create"})["token"]
        # The crash handler divides by zero — a 200 with ok: true; the
        # fault was recorded, not surfaced as a request failure.
        response = post(server, {"op": "tap", "token": token,
                                 "text": "crash"})
        assert response["ok"]
        # Still live and interactive:
        response = post(server, {"op": "tap", "token": token,
                                 "text": "bump"})
        assert response["ok"]
        # ...and the obs counter saw it.
        stats = post(server, {"op": "stats"})["stats"]
        assert stats["metrics"]["faults_recorded"] == 1

    def test_render_fault_screen_round_trips_through_snapshot(
            self, record_server):
        host, server = record_server
        token = post(server, {"op": "create"})["token"]
        # "n = 10" sets d := 0, so the *render* divides by zero and the
        # fault screen goes up (the session survives).
        post(server, {"op": "tap", "token": token, "text": "n = 10"})
        rendered = post(server, {"op": "render", "token": token})
        assert "runtime fault while rendering:" in rendered["html"]
        image = post(server, {"op": "snapshot", "token": token})["image"]
        assert image["faults"]
        assert "division by zero" in image["faults"][0]["error"]

    def test_quarantined_render_is_flagged_degraded(self, record_server):
        host, server = record_server
        token = post(server, {"op": "create"})["token"]
        post(server, {"op": "render", "token": token})  # cache last-good
        for _ in range(3):
            post(server, {"op": "tap", "token": token, "text": "crash"})
        refused = post(server, {"op": "tap", "token": token,
                                "text": "bump"})
        assert not refused["ok"]
        assert refused["error"]["type"] == "SessionQuarantined"
        rendered = post(server, {"op": "render", "token": token})
        assert rendered["ok"] and rendered["degraded"]
        assert "n = 10" in rendered["html"]  # the last-good document


class TestTypedErrorTaxonomy:
    def test_eval_fault_is_typed(self, raise_server):
        host, server = raise_server
        token = post(server, {"op": "create"})["token"]
        response = post(server, {"op": "tap", "token": token,
                                 "text": "crash"})
        assert not response["ok"]
        assert response["error"]["type"] == "EvalFault"
        assert "division by zero" in response["error"]["message"]

    def test_describe_error_attaches_the_span_id(self):
        # When a session *is* traced, the failing transition's span id
        # rides along so a client error correlates with the span tree.
        from repro.core.errors import EvalError
        from repro.live.session import LiveSession
        from repro.serve.protocol import describe_error

        tracer = Tracer()
        session = LiveSession(CRASHY, tracer=tracer)
        with pytest.raises(EvalError) as caught:
            session.tap_text("crash")
        type_, extra = describe_error(caught.value, tracer=tracer)
        assert type_ == "EvalFault"
        assert isinstance(extra["span_id"], int)
        assert any(
            span.span_id == extra["span_id"] for span in tracer.spans()
        )

    def test_fuel_exhausted_is_typed(self):
        host, server, thread = start_server(
            {"fault_policy": "raise", "budget": Budget(fuel=200)}
        )
        try:
            token = post(server, {"op": "create"})["token"]
            response = post(server, {"op": "tap", "token": token,
                                     "text": "crash"})
            assert not response["ok"]
            # Either error is legitimate depending on where fuel runs
            # out, but it must be *typed* — never InternalError.
            assert response["error"]["type"] in (
                "FuelExhausted", "EvalFault"
            )
        finally:
            stop_server(server, thread)

    def test_update_rejected_carries_problems(self, raise_server):
        host, server = raise_server
        token = post(server, {"op": "create"})["token"]
        response = post(server, {"op": "edit_source", "token": token,
                                 "source": BROKEN})
        # Surface-checked rejections come back as a rejected result...
        assert response["ok"] and response["status"] == "rejected"
        assert response["problems"]

    def test_no_untyped_500s_for_session_faults(self, raise_server):
        # Sweep every kind of client-triggerable failure and assert the
        # error type is never InternalError.
        host, server = raise_server
        token = post(server, {"op": "create"})["token"]
        probes = [
            {"op": "tap", "token": token, "text": "crash"},
            {"op": "tap", "token": token, "text": "no such box"},
            {"op": "tap", "token": "bogus", "text": "x"},
            {"op": "edit_source", "token": token, "source": "page ??"},
            {"op": "probe", "token": token, "expression": "1 /"},
            {"op": "nonsense"},
        ]
        for payload in probes:
            response = post(server, payload)
            if not response.get("ok"):
                assert response["error"]["type"] != "InternalError", payload


class TestHTTPChaos:
    def test_injected_http_refusal_is_a_typed_503(self):
        chaos = FaultInjector(
            FaultPlan(rates={"http": 1.0}, max_faults=2)
        )
        host, server, thread = start_server(
            {"fault_policy": "record"}, chaos=chaos
        )
        try:
            with pytest.raises(urllib.error.HTTPError) as caught:
                post(server, {"op": "stats"})
            assert caught.value.code == 503
            body = json.loads(caught.value.read())
            # One name for one fault class, in the standard envelope —
            # indistinguishable in shape from any other protocol error.
            assert body["error"]["type"] == "InjectedFault"
            assert body["ok"] is False
            assert body["op"] == "stats"
            assert body["protocol"] == 1
            with pytest.raises(urllib.error.HTTPError):
                post(server, {"op": "stats"})
            # max_faults spent: service resumes.
            assert post(server, {"op": "stats"})["ok"]
            assert chaos.counts["http"] == 2
        finally:
            stop_server(server, thread)
