"""The journal's durability policy: ``fsync=none|interval|always``."""

import json

import pytest

from repro.apps.counter import SOURCE as COUNTER
from repro.api import Journal, Tracer
from repro.core.errors import ReproError
from repro.resilience import recover
from repro.resilience.journal import FSYNC_POLICIES
from repro.serve.host import SessionHost


def make_host(journal):
    return SessionHost(
        pool_size=4,
        default_source=COUNTER,
        tracer=Tracer(),
        session_kwargs={"fault_policy": "record"},
        journal=journal,
    )


def records(journal):
    with open(journal.path) as handle:
        return [json.loads(line) for line in handle]


def metas(journal):
    return [r for r in records(journal) if r["kind"] == "meta"]


class TestFsyncPolicy:
    def test_policies_are_validated(self, journal_dir):
        assert set(FSYNC_POLICIES) == {"none", "interval", "always"}
        with pytest.raises(ReproError):
            Journal(journal_dir, fsync="sometimes")
        with pytest.raises(ReproError):
            Journal(journal_dir, fsync="interval", fsync_interval=0)

    def test_default_writes_no_meta_record(self, journal_dir):
        journal = Journal(journal_dir)
        host = make_host(journal)
        token = host.create()
        host.tap(token, path=[0])
        assert metas(journal) == []
        assert journal.tracer.counters.get("journal_fsyncs", 0) == 0
        # Reopening under the default is also markerless: existing
        # journals stay byte-identical across restarts.
        Journal(journal_dir)
        assert metas(journal) == []

    def test_non_default_policy_is_recorded_once(self, journal_dir):
        journal = Journal(journal_dir, fsync="always")
        assert [m["fsync"] for m in metas(journal)] == ["always"]
        # Same policy on restart: the header already says so.
        reopened = Journal(journal_dir, fsync="always")
        assert [m["fsync"] for m in metas(reopened)] == ["always"]

    def test_policy_changes_append_a_new_meta(self, journal_dir):
        Journal(journal_dir, fsync="always")
        Journal(journal_dir, fsync="interval")
        back_to_default = Journal(journal_dir, fsync="none")
        assert [m["fsync"] for m in metas(back_to_default)] == [
            "always", "interval", "none",
        ]
        # ...and "none" is only recorded because the policy *changed*.
        again = Journal(journal_dir, fsync="none")
        assert len(metas(again)) == 3

    def test_always_syncs_every_append(self, journal_dir):
        tracer = Tracer()
        journal = Journal(journal_dir, fsync="always", tracer=tracer)
        host = make_host(journal)
        token = host.create()
        for _ in range(3):
            host.tap(token, path=[0])
        appends = len(records(journal))
        assert tracer.counters["journal_fsyncs"] == appends

    def test_interval_syncs_at_most_once_per_window(self, journal_dir):
        tracer = Tracer()
        journal = Journal(
            journal_dir, fsync="interval", fsync_interval=3600.0,
            tracer=tracer,
        )
        host = make_host(journal)
        token = host.create()
        for _ in range(5):
            host.tap(token, path=[0])
        # Only the first append inside the (huge) window paid the sync.
        assert tracer.counters["journal_fsyncs"] == 1

    def test_synced_journals_recover_identically(self, journal_dir):
        journal = Journal(journal_dir, fsync="always")
        host = make_host(journal)
        token = host.create()
        for _ in range(4):
            host.tap(token, path=[0])
        html, _generation, _ = host.render(token)

        rebuilt = make_host(journal=None)
        report = recover(rebuilt, Journal(journal_dir, fsync="always"))
        assert report.sessions == 1
        html_after, _generation, _ = rebuilt.render(token)
        assert html_after == html

    def test_meta_records_do_not_disturb_per_token_reads(self, journal_dir):
        journal = Journal(journal_dir, fsync="interval")
        host = make_host(journal)
        token = host.create()
        host.tap(token, path=[0])
        kinds = [r["kind"] for r in journal.records_for(token)]
        assert "meta" not in kinds
        assert kinds[0] == "create"
