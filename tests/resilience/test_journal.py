"""The write-ahead journal: record shapes, ordering, torn tails."""

import json
import os

import pytest

from repro.core.errors import ReproError
from repro.api import Tracer
from repro.api import Journal
from repro.resilience import (
    decode_batch_events,
    encode_batch_events,
    truncate_journal,
)


def make_journal(journal_dir, **kwargs):
    return Journal(journal_dir, **kwargs)


class TestJournal:
    def test_validation(self, journal_dir):
        with pytest.raises(ReproError):
            Journal(journal_dir, checkpoint_every=0)

    def test_records_are_one_json_object_per_line(self, journal_dir):
        journal = make_journal(journal_dir)
        journal.record_create("s-1", "page start()\n", "demo")
        journal.record_event("s-1", "tap", {"text": "go"})
        journal.record_checkpoint("s-1", {"format": "repro-image/1"})
        journal.record_destroy("s-1")
        with open(journal.path) as handle:
            kinds = [json.loads(line)["kind"] for line in handle]
        assert kinds == ["create", "event", "checkpoint", "destroy"]

    def test_seq_is_globally_monotone_and_resumes(self, journal_dir):
        journal = make_journal(journal_dir)
        journal.record_create("s-1", "x", None)
        journal.record_event("s-1", "tap", {})
        assert [r["seq"] for r in journal.read()] == [1, 2]
        # A restart opens the same file and keeps counting.
        reopened = make_journal(journal_dir)
        reopened.record_event("s-1", "back", {})
        assert [r["seq"] for r in reopened.read()] == [1, 2, 3]

    def test_unjournalable_op_refused(self, journal_dir):
        journal = make_journal(journal_dir)
        with pytest.raises(ReproError):
            journal.record_event("s-1", "render", {})

    def test_checkpoint_due_after_n_events(self, journal_dir):
        journal = make_journal(journal_dir, checkpoint_every=3)
        journal.record_create("s-1", "x", None)
        dues = [
            journal.record_event("s-1", "tap", {}) for _ in range(3)
        ]
        assert dues == [False, False, True]
        journal.record_checkpoint("s-1", {})
        assert journal.record_event("s-1", "tap", {}) is False

    def test_checkpoint_cadence_is_per_token(self, journal_dir):
        journal = make_journal(journal_dir, checkpoint_every=2)
        journal.record_create("a", "x", None)
        journal.record_create("b", "x", None)
        assert journal.record_event("a", "tap", {}) is False
        assert journal.record_event("b", "tap", {}) is False
        assert journal.record_event("a", "tap", {}) is True
        assert journal.record_event("b", "tap", {}) is True

    def test_torn_tail_is_dropped(self, journal_dir):
        journal = make_journal(journal_dir)
        journal.record_create("s-1", "x", None)
        journal.record_event("s-1", "tap", {"text": "go"})
        journal.record_event("s-1", "back", {})
        truncate_journal(journal.path, drop_bytes=10)
        records = make_journal(journal_dir).read()
        assert [r["kind"] for r in records] == ["create", "event"]

    def test_torn_tail_then_append_keeps_reading_to_the_tear(self, journal_dir):
        # The reader stops at the first undecodable line even if intact
        # records follow — order is sacred; a hole means stop — and
        # reopening cuts the file back to the tear.
        journal = make_journal(journal_dir)
        journal.record_create("s-1", "x", None)
        truncate_journal(journal.path, drop_bytes=5)
        with open(journal.path, "a") as handle:
            handle.write("\n")
            handle.write(json.dumps({"kind": "destroy", "seq": 9}) + "\n")
        assert list(make_journal(journal_dir).read()) == []

    def test_torn_tail_is_repaired_on_reopen(self, journal_dir):
        # Crash, recover, append, crash again: the torn fragment must
        # be cut from disk on reopen, or the first post-recovery append
        # glues onto it and the *second* recovery silently loses every
        # record after the first crash.
        journal = make_journal(journal_dir)
        journal.record_create("s-1", "x", None)
        journal.record_event("s-1", "tap", {})
        journal.record_event("s-1", "back", {})
        truncate_journal(journal.path, drop_bytes=10)

        survivor = make_journal(journal_dir)
        survivor.record_event("s-1", "tap", {})
        survivor.record_event("s-1", "back", {})

        records = list(make_journal(journal_dir).read())
        assert [r["kind"] for r in records] == [
            "create", "event", "event", "event"
        ]
        # The torn record's seq was never acknowledged; numbering
        # resumes from the last intact record.
        assert [r["seq"] for r in records] == [1, 2, 3, 4]

    def test_unterminated_tail_counts_as_torn(self, journal_dir):
        # A final line missing its newline is torn even if the fragment
        # happens to parse: appends write record + newline in one
        # write, so the record was never acknowledged.
        journal = make_journal(journal_dir)
        journal.record_create("s-1", "x", None)
        with open(journal.path, "a") as handle:
            handle.write(json.dumps(
                {"kind": "destroy", "seq": 2, "token": "s-1"}
            ))  # no trailing newline
        reopened = make_journal(journal_dir)
        assert [r["kind"] for r in reopened.read()] == ["create"]
        reopened.record_event("s-1", "tap", {})
        kinds = [r["kind"] for r in make_journal(journal_dir).read()]
        assert kinds == ["create", "event"]

    def test_metrics(self, journal_dir):
        tracer = Tracer()
        journal = make_journal(journal_dir, tracer=tracer)
        journal.record_create("s-1", "x", None)
        journal.record_event("s-1", "tap", {})
        journal.record_checkpoint("s-1", {})
        metrics = tracer.metrics()
        assert metrics["journal_events"] == 1
        assert metrics["journal_checkpoints"] == 1

    def test_truncate_returns_bytes_dropped(self, journal_dir):
        journal = make_journal(journal_dir)
        journal.record_create("s-1", "x", None)
        size = os.path.getsize(journal.path)
        assert truncate_journal(journal.path, drop_bytes=size + 100) == size


class TestSeekIndex:
    """The byte-offset seek index behind lazy replay (repro.provenance)."""

    def test_read_is_lazy(self, journal_dir):
        journal = make_journal(journal_dir)
        journal.record_create("s-1", "x", None)
        records = journal.read()
        assert iter(records) is records  # a generator, not a list
        assert [r["kind"] for r in records] == ["create"]

    def test_tokens_in_first_create_order(self, journal_dir):
        journal = make_journal(journal_dir)
        journal.record_create("b", "x", None)
        journal.record_create("a", "x", None)
        assert journal.tokens() == ("b", "a")
        assert make_journal(journal_dir).tokens() == ("b", "a")

    def test_start_offset_seeks_to_the_create_record(self, journal_dir):
        journal = make_journal(journal_dir)
        journal.record_create("a", "x", None)
        journal.record_event("a", "tap", {})
        journal.record_create("b", "y", None)
        offset = journal.start_offset("b")
        assert offset is not None
        first = next(journal.read(start=offset))
        assert (first["kind"], first["token"]) == ("create", "b")
        assert journal.start_offset("missing") is None

    def test_checkpoint_before_picks_the_latest_qualifying(self, journal_dir):
        journal = make_journal(journal_dir)
        journal.record_create("s-1", "x", None)
        journal.record_event("s-1", "tap", {})
        journal.record_checkpoint("s-1", {"n": 1})   # seq 3
        journal.record_event("s-1", "tap", {})
        journal.record_checkpoint("s-1", {"n": 2})   # seq 5
        assert journal.checkpoint_before("s-1")[0] == 5
        assert journal.checkpoint_before("s-1", seq=4)[0] == 3
        assert journal.checkpoint_before("s-1", seq=2) is None
        assert journal.checkpoint_before("missing") is None
        # The offset really points at the checkpoint's own line.
        cp_seq, offset = journal.checkpoint_before("s-1", seq=4)
        first = next(journal.read(start=offset))
        assert (first["kind"], first["seq"]) == ("checkpoint", cp_seq)
        # A reopened journal rebuilds the same index from disk.
        assert make_journal(journal_dir).checkpoint_before("s-1")[0] == 5

    def test_records_for_omits_checkpoint_images(self, journal_dir):
        journal = make_journal(journal_dir)
        journal.record_create("s-1", "x", None)
        journal.record_checkpoint("s-1", {"format": "repro-image/1"})
        records = list(journal.records_for("s-1"))
        assert records[1]["image"] == {"omitted": True}
        with_images = list(journal.records_for("s-1", include_images=True))
        assert with_images[1]["image"] == {"format": "repro-image/1"}

    def test_records_are_span_stamped_under_a_span(self, journal_dir):
        tracer = Tracer()
        journal = make_journal(journal_dir, tracer=tracer)
        with tracer.span("op.create") as span:
            journal.record_create("s-1", "x", None)
        records = list(journal.read())
        assert records[0]["span_id"] == span.span_id
        # The join goes both ways: the span learned the record's seq.
        assert span.attrs["journal_seq"] == records[0]["seq"]

    def test_checkpoint_does_not_overwrite_the_spans_seq(self, journal_dir):
        tracer = Tracer()
        journal = make_journal(journal_dir, tracer=tracer)
        journal.record_create("s-1", "x", None)
        with tracer.span("op.tap") as span:
            event_seq = journal._seq + 1
            journal.record_event("s-1", "tap", {})
            journal.record_checkpoint("s-1", {})
        assert span.attrs["journal_seq"] == event_seq


class TestJournalEdgeCases:
    """Torn checkpoints, batches interleaved with destroy, recover tails."""

    def _tear_into_last_line(self, path, keep_bytes=5):
        """Truncate so the tear lands *inside* the final record."""
        with open(path, "rb") as handle:
            lines = handle.readlines()
        truncate_journal(path, drop_bytes=len(lines[-1]) - keep_bytes)

    def test_torn_line_at_checkpoint_boundary(self, journal_dir):
        # The crash tears the checkpoint record itself: the image is
        # gone, but everything the checkpoint summarized is still in
        # the prefix — recovery must fall back to create + full replay.
        from repro.serve.host import SessionHost
        from repro.resilience import recover
        from repro.apps.counter import SOURCE

        journal = make_journal(journal_dir, checkpoint_every=2)
        host = SessionHost(default_source=SOURCE, journal=journal)
        token = host.create()
        for _ in range(2):
            host.tap(token, path=[0])  # second tap triggers a checkpoint
        html = host.render(token)[0]
        with open(journal.path) as handle:
            assert json.loads(
                handle.readlines()[-1]
            )["kind"] == "checkpoint"
        self._tear_into_last_line(journal.path)

        reopened = make_journal(journal_dir)
        assert reopened.checkpoint_before(token) is None
        kinds = [r["kind"] for r in reopened.read()]
        assert kinds == ["create", "event", "event"]

        rebuilt = SessionHost(default_source=SOURCE)
        report = recover(rebuilt, reopened)
        assert report.checkpoints_used == 0
        assert report.events_replayed == 2
        assert rebuilt.render(token)[0] == html

    def test_batch_events_interleaved_with_destroy(self, journal_dir):
        # Two sessions batching concurrently; one is destroyed between
        # the other's batches.  Collation must keep their logs apart:
        # the destroyed session stays dead, the survivor replays every
        # batch that was journaled for it.
        from repro.serve.host import SessionHost
        from repro.resilience import recover
        from repro.apps.counter import SOURCE
        from repro.core.errors import ReproError as Unknown

        journal = make_journal(journal_dir)
        host = SessionHost(default_source=SOURCE, journal=journal)
        doomed = host.create()
        survivor = host.create()
        host.batch(doomed, [("tap", (0,))])
        host.batch(survivor, [("tap", (0,)), ("tap", (0,))])
        host.destroy(doomed)
        host.batch(survivor, [("tap", (0,))])
        html = host.render(survivor)[0]
        assert "count: 3" in html

        rebuilt = SessionHost(default_source=SOURCE)
        report = recover(rebuilt, make_journal(journal_dir))
        assert report.sessions == 1
        assert rebuilt.render(survivor)[0] == html
        with pytest.raises(Unknown):
            rebuilt.render(doomed)

    def test_journal_ending_in_a_recover_marker(self, journal_dir):
        # Crash, recover (appends the marker), crash again before any
        # new traffic: the journal now *ends* in a tokenless recover
        # record.  Reopening must not trip on it, numbering must resume
        # past it, and a second recovery must rebuild the same session.
        from repro.serve.host import SessionHost
        from repro.resilience import recover
        from repro.apps.counter import SOURCE

        journal = make_journal(journal_dir)
        host = SessionHost(default_source=SOURCE, journal=journal)
        token = host.create()
        host.tap(token, path=[0])
        html = host.render(token)[0]

        first = SessionHost(default_source=SOURCE)
        recover(first, make_journal(journal_dir))

        reopened = make_journal(journal_dir)
        records = list(reopened.read())
        assert records[-1]["kind"] == "recover"
        assert reopened.last_seq() == records[-1]["seq"]

        second = SessionHost(default_source=SOURCE)
        report = recover(second, reopened)
        assert report.sessions == 1
        assert second.render(token)[0] == html
        # The second marker extends the sequence strictly.
        tail = list(make_journal(journal_dir).read())
        assert tail[-1]["kind"] == "recover"
        assert tail[-1]["seq"] > records[-1]["seq"]


class TestBatchEncoding:
    def test_round_trip(self):
        events = [
            ("tap", (0, 1)),
            ("tap_text", "go"),
            ("edit", (2,), "hello"),
            ("back",),
        ]
        wire = encode_batch_events(events)
        assert json.loads(json.dumps(wire)) == wire  # JSON-clean
        assert decode_batch_events(wire) == events
