"""The write-ahead journal: record shapes, ordering, torn tails."""

import json
import os

import pytest

from repro.core.errors import ReproError
from repro.api import Tracer
from repro.api import Journal
from repro.resilience import (
    decode_batch_events,
    encode_batch_events,
    truncate_journal,
)


def make_journal(journal_dir, **kwargs):
    return Journal(journal_dir, **kwargs)


class TestJournal:
    def test_validation(self, journal_dir):
        with pytest.raises(ReproError):
            Journal(journal_dir, checkpoint_every=0)

    def test_records_are_one_json_object_per_line(self, journal_dir):
        journal = make_journal(journal_dir)
        journal.record_create("s-1", "page start()\n", "demo")
        journal.record_event("s-1", "tap", {"text": "go"})
        journal.record_checkpoint("s-1", {"format": "repro-image/1"})
        journal.record_destroy("s-1")
        with open(journal.path) as handle:
            kinds = [json.loads(line)["kind"] for line in handle]
        assert kinds == ["create", "event", "checkpoint", "destroy"]

    def test_seq_is_globally_monotone_and_resumes(self, journal_dir):
        journal = make_journal(journal_dir)
        journal.record_create("s-1", "x", None)
        journal.record_event("s-1", "tap", {})
        assert [r["seq"] for r in journal.read()] == [1, 2]
        # A restart opens the same file and keeps counting.
        reopened = make_journal(journal_dir)
        reopened.record_event("s-1", "back", {})
        assert [r["seq"] for r in reopened.read()] == [1, 2, 3]

    def test_unjournalable_op_refused(self, journal_dir):
        journal = make_journal(journal_dir)
        with pytest.raises(ReproError):
            journal.record_event("s-1", "render", {})

    def test_checkpoint_due_after_n_events(self, journal_dir):
        journal = make_journal(journal_dir, checkpoint_every=3)
        journal.record_create("s-1", "x", None)
        dues = [
            journal.record_event("s-1", "tap", {}) for _ in range(3)
        ]
        assert dues == [False, False, True]
        journal.record_checkpoint("s-1", {})
        assert journal.record_event("s-1", "tap", {}) is False

    def test_checkpoint_cadence_is_per_token(self, journal_dir):
        journal = make_journal(journal_dir, checkpoint_every=2)
        journal.record_create("a", "x", None)
        journal.record_create("b", "x", None)
        assert journal.record_event("a", "tap", {}) is False
        assert journal.record_event("b", "tap", {}) is False
        assert journal.record_event("a", "tap", {}) is True
        assert journal.record_event("b", "tap", {}) is True

    def test_torn_tail_is_dropped(self, journal_dir):
        journal = make_journal(journal_dir)
        journal.record_create("s-1", "x", None)
        journal.record_event("s-1", "tap", {"text": "go"})
        journal.record_event("s-1", "back", {})
        truncate_journal(journal.path, drop_bytes=10)
        records = make_journal(journal_dir).read()
        assert [r["kind"] for r in records] == ["create", "event"]

    def test_torn_tail_then_append_keeps_reading_to_the_tear(self, journal_dir):
        # The reader stops at the first undecodable line even if intact
        # records follow — order is sacred; a hole means stop — and
        # reopening cuts the file back to the tear.
        journal = make_journal(journal_dir)
        journal.record_create("s-1", "x", None)
        truncate_journal(journal.path, drop_bytes=5)
        with open(journal.path, "a") as handle:
            handle.write("\n")
            handle.write(json.dumps({"kind": "destroy", "seq": 9}) + "\n")
        assert make_journal(journal_dir).read() == []

    def test_torn_tail_is_repaired_on_reopen(self, journal_dir):
        # Crash, recover, append, crash again: the torn fragment must
        # be cut from disk on reopen, or the first post-recovery append
        # glues onto it and the *second* recovery silently loses every
        # record after the first crash.
        journal = make_journal(journal_dir)
        journal.record_create("s-1", "x", None)
        journal.record_event("s-1", "tap", {})
        journal.record_event("s-1", "back", {})
        truncate_journal(journal.path, drop_bytes=10)

        survivor = make_journal(journal_dir)
        survivor.record_event("s-1", "tap", {})
        survivor.record_event("s-1", "back", {})

        records = make_journal(journal_dir).read()
        assert [r["kind"] for r in records] == [
            "create", "event", "event", "event"
        ]
        # The torn record's seq was never acknowledged; numbering
        # resumes from the last intact record.
        assert [r["seq"] for r in records] == [1, 2, 3, 4]

    def test_unterminated_tail_counts_as_torn(self, journal_dir):
        # A final line missing its newline is torn even if the fragment
        # happens to parse: appends write record + newline in one
        # write, so the record was never acknowledged.
        journal = make_journal(journal_dir)
        journal.record_create("s-1", "x", None)
        with open(journal.path, "a") as handle:
            handle.write(json.dumps(
                {"kind": "destroy", "seq": 2, "token": "s-1"}
            ))  # no trailing newline
        reopened = make_journal(journal_dir)
        assert [r["kind"] for r in reopened.read()] == ["create"]
        reopened.record_event("s-1", "tap", {})
        kinds = [r["kind"] for r in make_journal(journal_dir).read()]
        assert kinds == ["create", "event"]

    def test_metrics(self, journal_dir):
        tracer = Tracer()
        journal = make_journal(journal_dir, tracer=tracer)
        journal.record_create("s-1", "x", None)
        journal.record_event("s-1", "tap", {})
        journal.record_checkpoint("s-1", {})
        metrics = tracer.metrics()
        assert metrics["journal_events"] == 1
        assert metrics["journal_checkpoints"] == 1

    def test_truncate_returns_bytes_dropped(self, journal_dir):
        journal = make_journal(journal_dir)
        journal.record_create("s-1", "x", None)
        size = os.path.getsize(journal.path)
        assert truncate_journal(journal.path, drop_bytes=size + 100) == size


class TestBatchEncoding:
    def test_round_trip(self):
        events = [
            ("tap", (0, 1)),
            ("tap_text", "go"),
            ("edit", (2,), "hello"),
            ("back",),
        ]
        wire = encode_batch_events(events)
        assert json.loads(json.dumps(wire)) == wire  # JSON-clean
        assert decode_batch_events(wire) == events
