"""Crash recovery: journal replay rebuilds byte-identical sessions.

These tests simulate the crash in-process: drive one journaled host,
drop it on the floor (no clean shutdown exists to lean on), build a
fresh host over the same directory and :func:`repro.resilience.recover`
it.  Determinism — virtual clocks, seeded substrates, "exactly one
internal transition is enabled" — makes the recovered HTML
byte-identical, which is what the assertions pin.
"""

import pytest

from repro.apps.counter import SOURCE as COUNTER
from repro.core.errors import ReproError
from repro.api import Tracer
from repro.api import Journal
from repro.resilience import recover, truncate_journal
from repro.serve.host import SessionHost

from .conftest import CRASHY


def make_host(source=COUNTER, journal=None, **kwargs):
    kwargs.setdefault("session_kwargs", {"fault_policy": "record"})
    return SessionHost(
        pool_size=4,
        default_source=source,
        tracer=Tracer(),
        journal=journal,
        **kwargs
    )


def journaled_host(journal_dir, source=COUNTER, checkpoint_every=50,
                   **kwargs):
    journal = Journal(journal_dir, checkpoint_every=checkpoint_every)
    return make_host(source=source, journal=journal, **kwargs), journal


class TestRecovery:
    def test_recover_replays_to_byte_identical_html(self, journal_dir):
        host, _ = journaled_host(journal_dir)
        token = host.create()
        for _ in range(5):
            host.tap(token, path=[0])
        html, generation, _ = host.render(token)
        assert "count: 5" in html

        rebuilt = make_host()
        report = recover(rebuilt, Journal(journal_dir))
        assert report.sessions == 1
        assert report.events_replayed == 5
        html_after, generation_after, _ = rebuilt.render(token)
        assert html_after == html

    def test_recover_uses_the_latest_checkpoint(self, journal_dir):
        host, _ = journaled_host(journal_dir, checkpoint_every=2)
        token = host.create()
        for _ in range(5):
            host.tap(token, path=[0])
        html, _, _ = host.render(token)

        rebuilt = make_host()
        report = recover(rebuilt, Journal(journal_dir))
        assert report.checkpoints_used == 1
        # Two checkpoints happened (after events 2 and 4); only the tail
        # after the latest one is replayed.
        assert report.events_replayed == 1
        assert rebuilt.render(token)[0] == html

    def test_recover_survives_a_torn_tail(self, journal_dir):
        host, journal = journaled_host(journal_dir)
        token = host.create()
        for _ in range(3):
            host.tap(token, path=[0])
        truncate_journal(journal.path, drop_bytes=10)

        rebuilt = make_host()
        report = recover(rebuilt, Journal(journal_dir))
        # The torn last tap was never acknowledged; two replay.
        assert report.events_replayed == 2
        assert "count: 2" in rebuilt.render(token)[0]

    def test_recovered_generations_never_collide_with_pre_crash(
            self, journal_dir):
        # Renders are not journaled, so at crash time the live
        # generation can be ahead of anything recovery replays.  The
        # recovered counter must never re-issue those numbers for
        # different content — or a client polling with a pre-crash
        # generation gets not_modified and displays stale HTML forever.
        host, _ = journaled_host(journal_dir)
        token = host.create()
        host.tap(token, path=[0])
        host.render(token)
        host.tap(token, path=[0])
        _, pre_crash_gen, _ = host.render(token)  # client saw "count: 2"

        rebuilt = make_host()
        recover(rebuilt, Journal(journal_dir))
        rebuilt.render(token)
        rebuilt.tap(token, path=[0])  # the recovered session moves on
        html, generation, modified = rebuilt.render(
            token, if_generation=pre_crash_gen
        )
        assert modified and html is not None
        assert "count: 3" in html
        assert generation > pre_crash_gen

    def test_generations_stay_unique_across_repeated_recoveries(
            self, journal_dir):
        host, _ = journaled_host(journal_dir)
        token = host.create()
        host.tap(token, path=[0])
        host.render(token)

        second = make_host()
        recover(second, Journal(journal_dir))
        second.tap(token, path=[0])
        _, gen2, _ = second.render(token)

        third = make_host()
        recover(third, Journal(journal_dir))
        third.tap(token, path=[0])
        html, gen3, modified = third.render(token, if_generation=gen2)
        assert modified and gen3 > gen2
        assert "count: 3" in html

    def test_destroyed_sessions_stay_destroyed(self, journal_dir):
        host, _ = journaled_host(journal_dir)
        keep = host.create()
        gone = host.create()
        host.destroy(gone)

        rebuilt = make_host()
        report = recover(rebuilt, Journal(journal_dir))
        assert report.sessions == 1
        assert set(rebuilt.tokens()) == {keep}

    def test_replayed_faults_rebuild_the_fault_history(self, journal_dir):
        host, _ = journaled_host(journal_dir, source=CRASHY)
        token = host.create()
        host.tap(token, text="crash")
        host.tap(token, text="bump")

        rebuilt = make_host(source=CRASHY)
        report = recover(rebuilt, Journal(journal_dir))
        assert report.events_replayed == 2
        assert report.faults_during_replay == 0  # record policy: absorbed
        with rebuilt.session(token) as entry:
            faults = entry.session.runtime.faults
        assert len(faults) == 1
        assert "division by zero" in str(faults[0].error)

    def test_quarantine_state_is_rebuilt_by_replay(self, journal_dir):
        host, _ = journaled_host(journal_dir, source=CRASHY,
                                 quarantine_after=2)
        token = host.create()
        host.tap(token, text="crash")
        host.tap(token, text="crash")
        assert host.is_quarantined(token)

        rebuilt = make_host(source=CRASHY, quarantine_after=2)
        recover(rebuilt, Journal(journal_dir))
        assert rebuilt.is_quarantined(token)

    def test_recovered_sessions_keep_journaling(self, journal_dir):
        host, _ = journaled_host(journal_dir)
        token = host.create()
        host.tap(token, path=[0])

        rebuilt = make_host()
        recover(rebuilt, Journal(journal_dir))
        rebuilt.tap(token, path=[0])  # journaled by the attached journal

        third = make_host()
        report = recover(third, Journal(journal_dir))
        assert report.events_replayed == 2
        assert "count: 2" in third.render(token)[0]

    def test_recover_refuses_a_journaling_host(self, journal_dir):
        host, journal = journaled_host(journal_dir)
        with pytest.raises(ReproError):
            recover(host, journal)

    def test_recover_counts_replays_metric(self, journal_dir):
        host, _ = journaled_host(journal_dir)
        host.create()
        host.create()
        rebuilt = make_host()
        recover(rebuilt, Journal(journal_dir))
        assert rebuilt.metrics()["journal_replays"] == 2

    def test_semantic_errors_in_the_journal_are_tolerated(self, journal_dir):
        # Write-ahead means failed ops are journaled too: a tap on a
        # text no box displays was refused live with a typed error, and
        # replay must shrug it off the same way.
        host, _ = journaled_host(journal_dir)
        token = host.create()
        with pytest.raises(ReproError):
            host.tap(token, text="no such box")
        host.tap(token, path=[0])

        rebuilt = make_host()
        report = recover(rebuilt, Journal(journal_dir))
        assert report.events_replayed == 2
        assert report.faults_during_replay == 0
        assert "count: 1" in rebuilt.render(token)[0]
