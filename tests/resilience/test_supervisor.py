"""The Supervisor: an UPDATE only sticks if it renders."""

import pytest

from repro.core.errors import UpdateRejected
from repro.live.session import LiveSession
from repro.api import Tracer

from .conftest import CRASHY

#: A well-typed edit whose render divides by zero the moment it applies.
RENDER_BOMB = CRASHY.replace("10 / d", "10 / (d - 1)")
#: A harmless edit.
RENAMED = CRASHY.replace('"n = "', '"m = "')
#: An ill-typed edit.
BROKEN = CRASHY.replace("count + 1", 'count + "no"')


def session(fault_policy="raise"):
    return LiveSession(
        CRASHY, fault_policy=fault_policy, supervised=True, tracer=Tracer()
    )


class TestSupervisedEdits:
    def test_clean_update_applies(self):
        live = session()
        result = live.edit_source(RENAMED)
        assert result.status == "applied"
        assert live.runtime.contains_text("m = 10")

    def test_rejected_update_still_rejects(self):
        live = session()
        result = live.edit_source(BROKEN)
        assert result.status == "rejected"
        assert result.problems
        assert live.runtime.contains_text("n = 10")  # old code running

    @pytest.mark.parametrize("policy", ["raise", "record"])
    def test_render_bomb_rolls_back(self, policy):
        live = session(policy)
        result = live.edit_source(RENDER_BOMB)
        assert result.status == "rolled_back"
        assert result.problems  # the fault that triggered the rollback
        # The last-good program is running and can still draw:
        assert live.runtime.contains_text("n = 10")
        # The buffer keeps the programmer's text (never thrown away):
        assert live.source == RENDER_BOMB
        # ...and the session is still fully interactive.
        live.tap_text("bump")
        assert live.runtime.global_value("count").value == 1.0

    def test_rollback_counts_and_logs(self):
        live = session()
        live.edit_source(RENDER_BOMB)
        assert live.runtime.metrics()["rollbacks"] == 1
        assert len(live.supervisor.rollbacks) == 1

    def test_fixing_the_bomb_applies_afterwards(self):
        live = session()
        live.edit_source(RENDER_BOMB)
        result = live.edit_source(RENAMED)
        assert result.status == "applied"
        assert live.runtime.contains_text("m = 10")

    def test_state_survives_a_rollback(self):
        live = session()
        live.tap_text("bump")
        live.tap_text("bump")
        live.edit_source(RENDER_BOMB)
        assert live.runtime.global_value("count").value == 2.0

    def test_unsupervised_record_session_shows_fault_screen_instead(self):
        # The contrast case: without a supervisor the bomb commits and
        # the session shows the fault screen (still alive, but dimmer).
        live = LiveSession(CRASHY, fault_policy="record")
        result = live.edit_source(RENDER_BOMB)
        assert result.status == "applied"
        assert live.runtime.contains_text("runtime fault while rendering:")
