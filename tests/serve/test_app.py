"""The HTTP JSON API: ThreadingHTTPServer on an ephemeral port."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.apps.counter import SOURCE as COUNTER
from repro.api import Tracer
from repro.serve.app import make_server
from repro.serve.host import SessionHost


@pytest.fixture
def server():
    host = SessionHost(
        pool_size=4, default_source=COUNTER, tracer=Tracer()
    )
    server = make_server(host)  # port 0: ephemeral
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def url(server, path="/"):
    return "http://127.0.0.1:{}{}".format(server.server_address[1], path)


def post(server, payload, path="/"):
    request = urllib.request.Request(
        url(server, path),
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def get(server, path):
    with urllib.request.urlopen(url(server, path)) as response:
        return json.loads(response.read())


class TestHTTP:
    def test_full_session_flow_over_http(self, server):
        created = post(server, {"op": "create"})
        assert created["ok"]
        token = created["token"]
        post(server, {"op": "tap", "token": token, "text": "count: 0"})
        rendered = post(server, {"op": "render", "token": token})
        assert "count: 1" in rendered["html"]
        # Evict over the wire, then render again: the 304 survives the
        # round trip through the session image.
        assert post(server, {"op": "evict", "token": token})["evicted"]
        again = post(
            server,
            {"op": "render", "token": token,
             "generation": rendered["generation"]},
        )
        assert again["not_modified"]

    def test_api_alias_path(self, server):
        assert post(server, {"op": "stats"}, path="/api")["ok"]

    def test_get_stats_and_healthz(self, server):
        assert get(server, "/healthz")["ok"]
        stats = get(server, "/stats")
        assert stats["ok"] and "pool_size" in stats["stats"]

    def test_unknown_get_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            get(server, "/nope")
        assert caught.value.code == 404

    def test_get_metrics_exposes_prometheus_text(self, server):
        from repro.obs.metrics import (
            CONTENT_TYPE, histograms_from_families, parse_prometheus,
        )

        created = post(server, {"op": "create"})
        post(server, {"op": "render", "token": created["token"]})
        with urllib.request.urlopen(url(server, "/metrics")) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == CONTENT_TYPE
            text = response.read().decode("utf-8")
        families = parse_prometheus(text)
        assert families["repro_sessions_created_total"][0][1] >= 1
        # The per-op service-time histograms ride along even on the
        # single-host shape — same document the cluster front renders.
        histograms = histograms_from_families(families)
        assert "repro_op_render_latency_seconds" in histograms
        assert histograms["repro_op_render_latency_seconds"].count >= 1
        # The breaker gauge is present (and zero on a healthy host).
        assert families["repro_sessions_open_breakers"][0][1] == 0

    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            url(server), data=b"{not json", headers={}
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request)
        assert caught.value.code == 400

    def test_semantic_errors_are_200_with_ok_false(self, server):
        response = post(
            server, {"op": "tap", "token": "nope", "text": "count: 0"}
        )
        assert not response["ok"]
        assert response["error"]["type"] == "UnknownToken"

    def test_concurrent_clients(self, server):
        tokens = [
            post(server, {"op": "create"})["token"] for _ in range(6)
        ]
        errors = []

        def client(token):
            try:
                for n in range(3):
                    post(server, {
                        "op": "tap", "token": token,
                        "text": "count: {}".format(n),
                    })
                rendered = post(server, {"op": "render", "token": token})
                assert "count: 3" in rendered["html"]
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=client, args=(t,)) for t in tokens
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
