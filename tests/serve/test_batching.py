"""Event batching and render coalescing: N events, one RENDER."""

import pytest

from repro.apps.counter import SOURCE as COUNTER
from repro.core.errors import ReproError, SystemError_
from repro.live.session import LiveSession
from repro.api import Tracer
from repro.serve.batching import apply_batch


def counter_session(**kwargs):
    return LiveSession(COUNTER, **kwargs)


def tap_path(session):
    return session.runtime.find_text("count: 0") or \
        session.runtime.find_text("count: 1")


class TestCoalescing:
    def test_three_taps_one_render(self):
        session = counter_session()
        path = session.runtime.find_text("count: 0")
        report = apply_batch(
            session, [("tap", path), ("tap", path), ("tap", path)]
        )
        assert report.events == 3
        assert report.renders == 1
        assert report.coalesced == 2
        assert session.runtime.contains_text("count: 3")

    def test_render_trace_shows_a_single_render(self):
        session = counter_session()
        path = session.runtime.find_text("count: 0")
        before = [t.rule for t in session.runtime.trace]
        apply_batch(session, [("tap", path)] * 4)
        fired = [t.rule for t in session.runtime.trace[len(before):]]
        assert fired.count("RENDER") == 1
        assert fired.count("TAP") == 4

    def test_batch_equals_sequential_taps(self):
        batched = counter_session()
        sequential = counter_session()
        path = batched.runtime.find_text("count: 0")
        apply_batch(batched, [("tap", path)] * 5)
        for _ in range(5):
            sequential.tap(path)
        assert batched.screenshot() == sequential.screenshot()

    def test_coalesced_metric_recorded_on_the_session_tracer(self):
        tracer = Tracer()
        session = counter_session(tracer=tracer)
        path = session.runtime.find_text("count: 0")
        apply_batch(session, [("tap", path)] * 3)
        assert tracer.metrics()["renders_coalesced"] == 2

    def test_session_convenience_method(self):
        session = counter_session()
        path = session.runtime.find_text("count: 0")
        report = session.apply_events([("tap", path), ("back",)])
        assert report.events == 2 and report.quiescent_render


class TestEventKinds:
    def test_tap_text_resolves_against_the_reference_display(self):
        """Both taps name the text the *client* saw — the display from
        before the batch — even though the first tap changes it."""
        session = counter_session()
        report = apply_batch(
            session,
            [("tap_text", "count: 0"), ("tap_text", "count: 0")],
        )
        assert report.events == 2
        assert session.runtime.contains_text("count: 2")

    def test_back_pops_a_pushed_page(self):
        source = (
            "page start()\n  render\n    boxed\n      post \"go\"\n"
            "      on tap do\n        push detail(7)\n"
            "page detail(n : number)\n  render\n    post n\n"
        )
        session = LiveSession(source)
        session.tap_text("go")
        report = apply_batch(session, [("back",)])
        assert report.events == 1
        assert session.runtime.page_name() == "start"

    def test_edit_event(self):
        session = LiveSession(
            "global apr : number = 4.5\n"
            "page start()\n  render\n    boxed\n      editable apr\n"
        )
        path = session.runtime.find_text("4.5")
        report = apply_batch(session, [("edit", path, "6.25")])
        assert report.events == 1
        assert session.runtime.contains_text("6.25")

    def test_mixed_batch(self):
        session = counter_session()
        path = session.runtime.find_text("count: 0")
        report = apply_batch(
            session, [("tap", path), ("back",), ("tap", path)]
        )
        assert report.renders == 1
        assert session.runtime.contains_text("count: 2")


class TestErrors:
    def test_unknown_kind_rejected(self):
        session = counter_session()
        with pytest.raises(ReproError):
            apply_batch(session, [("sing",)])

    def test_tap_without_handler_rejected(self):
        session = counter_session()
        with pytest.raises(SystemError_):
            apply_batch(session, [("tap", ())])

    def test_missing_text_rejected(self):
        session = counter_session()
        with pytest.raises(ReproError):
            apply_batch(session, [("tap_text", "no such label")])

    def test_empty_batch_is_a_noop(self):
        session = counter_session()
        report = apply_batch(session, [])
        assert report.events == 0
        assert report.renders == 0
        assert session.runtime.contains_text("count: 0")
