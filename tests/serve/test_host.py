"""SessionHost: registry, LRU pool, image-backed eviction, rehydration."""

import threading

import pytest

from repro.apps.counter import SOURCE as COUNTER
from repro.core.errors import ReproError
from repro.live.session import LiveSession
from repro.api import Tracer
from repro.serve.host import SessionHost, UnknownToken


def make_host(**kwargs):
    kwargs.setdefault("pool_size", 16)
    kwargs.setdefault("default_source", COUNTER)
    kwargs.setdefault("tracer", Tracer())
    return SessionHost(**kwargs)


class TestRegistry:
    def test_create_returns_distinct_tokens(self):
        host = make_host()
        tokens = {host.create() for _ in range(5)}
        assert len(tokens) == 5
        assert len(host) == 5

    def test_unknown_token_rejected(self):
        host = make_host()
        with pytest.raises(UnknownToken):
            host.tap("nope", text="count: 0")

    def test_create_without_source_needs_default(self):
        host = SessionHost(pool_size=2)
        with pytest.raises(ReproError):
            host.create()

    def test_explicit_source_overrides_default(self):
        host = make_host()
        token = host.create(
            'page start()\n  render\n    post "hello"\n'
        )
        assert "hello" in host.screenshot(token)

    def test_destroy_forgets_the_session(self):
        host = make_host()
        token = host.create()
        assert host.destroy(token)
        assert not host.destroy(token)
        with pytest.raises(UnknownToken):
            host.render(token)

    def test_metrics_count_creations(self):
        host = make_host()
        host.create()
        host.create()
        assert host.metrics()["sessions_created"] == 2


class TestEviction:
    def test_pool_overflow_evicts_least_recently_used(self):
        host = make_host(pool_size=2)
        a = host.create()
        b = host.create()
        c = host.create()  # pool is full: the LRU session (a) pages out
        assert host.evicted(a)
        assert not host.evicted(b)
        assert not host.evicted(c)
        assert host.metrics()["sessions_evicted"] == 1

    def test_touching_a_session_protects_it_from_eviction(self):
        host = make_host(pool_size=2)
        a = host.create()
        b = host.create()
        host.tap(a, text="count: 0")  # a is now the most recently used
        host.create()
        assert host.evicted(b)
        assert not host.evicted(a)

    def test_rehydration_is_transparent(self):
        host = make_host(pool_size=16)
        token = host.create()
        host.tap(token, text="count: 0")
        host.tap(token, text="count: 1")
        assert host.evict(token)
        assert host.evicted(token)
        # The next request rehydrates: same state, same display.
        host.tap(token, text="count: 2")
        assert not host.evicted(token)
        assert "count: 3" in host.screenshot(token)
        assert host.metrics()["sessions_rehydrated"] == 1

    def test_forced_evict_is_idempotent(self):
        host = make_host()
        token = host.create()
        assert host.evict(token)
        assert not host.evict(token)
        assert host.metrics()["sessions_evicted"] == 1

    def test_rehydrated_html_is_byte_identical(self):
        host = make_host()
        token = host.create(title="app")
        host.tap(token, text="count: 0")
        html_before, generation, _ = host.render(token)
        host.evict(token)
        html_after, generation_after, modified = host.render(token)
        assert modified  # dirty after rehydration, so it re-rendered
        assert html_after == html_before
        assert generation_after == generation  # same bytes, same gen

    def test_stats_report_pool_shape(self):
        host = make_host(pool_size=2)
        for _ in range(5):
            host.create()
        stats = host.stats()
        assert stats["sessions"] == 5
        assert stats["resident"] == 2
        assert stats["evicted"] == 3
        assert stats["pool_size"] == 2
        assert stats["metrics"]["sessions_evicted"] == 3


class TestEditWhileEvicted:
    def test_edit_on_evicted_session_applies_fixup(self):
        """Eviction is save/resume: an edit landing on a paged-out
        session behaves exactly like edit-while-suspended (Fig. 12)."""
        host = make_host()
        token = host.create()
        host.tap(token, text="count: 0")
        host.evict(token)
        edited = COUNTER.replace('"count: "', '"taps: "')
        result = host.edit_source(token, edited)
        assert result.applied
        assert "taps: 1" in host.screenshot(token)

    def test_edit_dropping_a_global_matches_live_semantics(self):
        host = make_host()
        token = host.create()
        host.tap(token, text="count: 0")
        host.evict(token)
        retyped = COUNTER.replace(
            "global count : number = 0",
            'global count : string = "fresh"',
        ).replace("count := count + 1", 'count := "tapped"').replace(
            "count := 0", 'count := ""'
        )
        result = host.edit_source(token, retyped)
        assert result.applied
        assert result.report.dropped_globals == ["count"]

    def test_rejected_edit_keeps_the_evicted_session_alive(self):
        host = make_host()
        token = host.create()
        host.tap(token, text="count: 0")
        host.evict(token)
        result = host.edit_source(token, "page start(\n")
        assert not result.applied and result.problems
        assert "count: 1" in host.screenshot(token)


class TestGenerations:
    def test_generation_bumps_only_when_the_view_changes(self):
        host = make_host()
        token = host.create()
        _html, g1, _ = host.render(token)
        host.back(token)  # empty stack pop: display re-renders identically
        _html, g2, modified = host.render(token)
        assert modified          # dirty, so it recomputed…
        assert g2 == g1          # …but the bytes did not change
        host.tap(token, text="count: 0")
        _html, g3, _ = host.render(token)
        assert g3 == g1 + 1

    def test_not_modified_short_circuit(self):
        host = make_host()
        token = host.create()
        html, generation, modified = host.render(token)
        assert modified and html
        html2, generation2, modified2 = host.render(
            token, if_generation=generation
        )
        assert not modified2 and html2 is None
        assert generation2 == generation

    def test_stale_client_generation_gets_fresh_html(self):
        host = make_host()
        token = host.create()
        _html, generation, _ = host.render(token)
        host.tap(token, text="count: 0")
        html, new_generation, modified = host.render(
            token, if_generation=generation
        )
        assert modified and "count: 1" in html
        assert new_generation == generation + 1

    def test_bytes_served_counts_only_fresh_html(self):
        host = make_host()
        token = host.create()
        html, generation, _ = host.render(token)
        served = host.metrics()["bytes_served"]
        assert served == len(html.encode("utf-8"))
        host.render(token, if_generation=generation)  # 304: free
        assert host.metrics()["bytes_served"] == served


class TestConcurrency:
    def test_parallel_traffic_on_disjoint_sessions(self):
        host = make_host(pool_size=4)
        tokens = [host.create() for _ in range(8)]
        errors = []

        def drive(token):
            try:
                for _ in range(5):
                    html, _gen, _mod = host.render(token)
                    if html is not None:
                        label = html.split("count: ")[1].split("<")[0]
                    host.tap(token, text="count: " + label.strip())
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=drive, args=(token,))
            for token in tokens
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for token in tokens:
            assert "count: 5" in host.screenshot(token)

    def test_busy_sessions_are_not_evicted(self):
        host = make_host(pool_size=1)
        a = host.create()
        with host.session(a):
            # a is busy (its lock is held); creating b must not deadlock
            # and must leave busy a resident.
            b = host.create()
        assert not host.evicted(a) or not host.evicted(b)
        # Once idle, the next create can evict normally.
        host.create()
        assert host.stats()["resident"] <= 2


class TestControlEquivalence:
    def test_pooled_session_matches_unpooled_control(self):
        """The acceptance shape in miniature: a session that lived
        through eviction+rehydration renders byte-identically to a
        plain LiveSession driven with the same actions."""
        host = make_host(pool_size=1, session_kwargs={})
        token = host.create(title="control")
        control = LiveSession(COUNTER)
        for _ in range(3):
            host.tap(token, text="count: " + str(_))
            control.tap_text("count: " + str(_))
            host.evict(token)
        html, _gen, _mod = host.render(token)
        from repro.render.html_backend import render_html

        assert html == render_html(control.display, title="control")
