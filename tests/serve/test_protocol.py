"""The JSON wire protocol: versioning, ops, 304 renders, error shapes."""

import json

from repro.apps.counter import SOURCE as COUNTER
from repro.api import Tracer
from repro.serve.host import SessionHost
from repro.serve.protocol import PROTOCOL_VERSION, handle_request


def make_host(**kwargs):
    kwargs.setdefault("pool_size", 8)
    kwargs.setdefault("default_source", COUNTER)
    kwargs.setdefault("tracer", Tracer())
    return SessionHost(**kwargs)


def call(host, **request):
    response = handle_request(host, request)
    json.dumps(response)  # every response must be JSON-clean
    assert response["protocol"] == PROTOCOL_VERSION
    return response


class TestEnvelope:
    def test_responses_carry_protocol_and_op(self):
        host = make_host()
        response = call(host, op="stats")
        assert response["ok"] and response["op"] == "stats"

    def test_wrong_protocol_version_rejected(self):
        response = call(make_host(), op="stats", protocol=99)
        assert not response["ok"]
        assert "protocol version" in response["error"]["message"]

    def test_unknown_op_lists_valid_ops(self):
        response = call(make_host(), op="dance")
        assert not response["ok"]
        assert "create" in response["error"]["message"]

    def test_non_object_request_rejected(self):
        response = handle_request(make_host(), "tap")
        assert not response["ok"]

    def test_semantic_errors_name_their_type(self):
        response = call(make_host(), op="render", token="nope")
        assert response["error"]["type"] == "UnknownToken"

    def test_missing_field_is_a_bad_request(self):
        response = call(make_host(), op="tap")
        assert response["error"]["type"] == "BadRequest"


class TestSessionOps:
    def test_create_tap_render_flow(self):
        host = make_host()
        created = call(host, op="create")
        token = created["token"]
        assert created["page"] == "start"
        call(host, op="tap", token=token, text="count: 0")
        rendered = call(host, op="render", token=token)
        assert "count: 1" in rendered["html"]
        assert rendered["generation"] >= 1

    def test_render_not_modified(self):
        host = make_host()
        token = call(host, op="create")["token"]
        first = call(host, op="render", token=token)
        second = call(
            host, op="render", token=token,
            generation=first["generation"],
        )
        assert second["not_modified"]
        assert "html" not in second

    def test_create_with_inline_source(self):
        host = SessionHost(pool_size=2)  # no default app
        created = call(
            host, op="create",
            source='page start()\n  render\n    post "inline"\n',
        )
        rendered = call(host, op="render", token=created["token"])
        assert "inline" in rendered["html"]

    def test_back_and_edit_box(self):
        host = make_host()
        token = call(
            host, op="create",
            source=(
                "global apr : number = 4.5\n"
                "page start()\n  render\n    boxed\n      editable apr\n"
            ),
        )["token"]
        html = call(host, op="render", token=token)["html"]
        assert "4.5" in html
        # Find the editable box's path via the host's session directly.
        with host.session(token) as entry:
            path = list(entry.session.runtime.find_text("4.5"))
        edited = call(
            host, op="edit_box", token=token, path=path, text="6.25"
        )
        assert edited["ok"]
        assert "6.25" in call(host, op="render", token=token)["html"]
        assert call(host, op="back", token=token)["ok"]

    def test_batch_reports_coalescing(self):
        host = make_host()
        token = call(host, op="create")["token"]
        with host.session(token) as entry:
            path = list(entry.session.runtime.find_text("count: 0"))
        response = call(
            host, op="batch", token=token,
            events=[{"kind": "tap", "path": path}] * 4,
        )
        assert response["events"] == 4
        assert response["renders"] == 1
        assert response["coalesced"] == 3
        assert host.metrics()["renders_coalesced"] == 3

    def test_edit_source_applied_and_rejected(self):
        host = make_host()
        token = call(host, op="create")["token"]
        applied = call(
            host, op="edit_source", token=token,
            source=COUNTER.replace('"count: "', '"taps: "'),
        )
        assert applied["status"] == "applied"
        assert applied["dropped_globals"] == []
        rejected = call(
            host, op="edit_source", token=token, source="page start(\n"
        )
        assert rejected["status"] == "rejected"
        assert rejected["problems"]
        # The session still runs the last good code.
        assert "taps: 0" in call(host, op="render", token=token)["html"]

    def test_probe(self):
        host = make_host()
        token = call(host, op="create")["token"]
        response = call(
            host, op="probe", token=token, expression="count + 41"
        )
        assert "41.0" in response["result"]

    def test_snapshot_is_a_loadable_image(self):
        from repro.persist import load_image

        host = make_host()
        token = call(host, op="create")["token"]
        call(host, op="tap", token=token, text="count: 0")
        image = call(host, op="snapshot", token=token)["image"]
        assert image["meta"]["token"] == token
        restored = load_image(json.loads(json.dumps(image)))
        assert restored.runtime.contains_text("count: 1")

    def test_evict_and_stats(self):
        host = make_host()
        token = call(host, op="create")["token"]
        assert call(host, op="evict", token=token)["evicted"]
        stats = call(host, op="stats")["stats"]
        assert stats["evicted"] == 1
        assert stats["metrics"]["sessions_evicted"] == 1
        # The evicted session still answers.
        assert "count: 0" in call(host, op="render", token=token)["html"]


class TestWireCodec:
    """The single dataclass→JSON codec behind every op payload."""

    def test_dataclasses_tuples_and_fallbacks(self):
        import dataclasses

        from repro.serve.protocol import wire_encode

        @dataclasses.dataclass
        class Inner:
            xs: tuple

        @dataclasses.dataclass
        class Outer:
            name: str
            inner: Inner
            table: dict

        encoded = wire_encode(
            Outer("a", Inner((1, 2)), {"k": ValueError("boom")})
        )
        assert encoded == {
            "name": "a",
            "inner": {"xs": [1, 2]},
            "table": {"k": "boom"},
        }
        json.dumps(encoded)

    def test_result_payload_flattens_the_report(self):
        import dataclasses

        from repro.serve.protocol import result_payload

        @dataclasses.dataclass
        class Report:
            dropped_globals: tuple = ("g",)

        @dataclasses.dataclass
        class Result:
            status: str = "applied"
            report: Report = dataclasses.field(default_factory=Report)

        payload = result_payload(Result())
        assert payload == {
            "status": "applied", "dropped_globals": ["g"],
        }

    def test_edit_source_payload_carries_memo_fields(self):
        # A field added to EditResult reaches the wire without touching
        # the op handler — the point of the shared codec.
        from repro.apps.gallery import function_gallery_source

        source = function_gallery_source(rows=2, cols=2)
        host = make_host(
            default_source=source,
            session_kwargs={"memo_render": True},
        )
        token = call(host, op="create")["token"]
        response = call(
            host, op="edit_source", token=token,
            source=source.replace('"gallery"', '"edited"'),
        )
        assert response["status"] == "applied"
        assert response["memo_hits"] == 2        # the two row calls
        assert response["memo_misses"] == 0
        assert response["replayed_boxes"] == 6   # 2 rows + 4 cells
        assert response["dropped_globals"] == []


class TestObservabilityOps:
    """``history`` and ``why``: the journal over the wire."""

    def journaled_host(self, tmp_path):
        from repro.api import Journal

        return make_host(journal=Journal(str(tmp_path / "journal")))

    def test_ops_require_a_journal(self):
        host = make_host()
        token = call(host, op="create")["token"]
        for op in ("history", "why"):
            response = call(host, op=op, token=token, path=[0])
            assert not response["ok"]
            assert "--journal-dir" in response["error"]["message"]

    def test_history_returns_the_timeline(self, tmp_path):
        host = self.journaled_host(tmp_path)
        token = call(host, op="create")["token"]
        call(host, op="tap", token=token, path=[0])
        call(host, op="back", token=token)
        response = call(host, op="history", token=token)
        assert response["ok"]
        history = response["history"]
        assert [entry["kind"] for entry in history] == [
            "create", "event", "event"
        ]
        assert [entry.get("op") for entry in history] == [
            None, "tap", "back"
        ]
        seqs = [entry["seq"] for entry in history]
        assert seqs == sorted(seqs)
        # No record drags a checkpoint image over the wire.
        assert all("image" not in entry for entry in history)

    def test_history_limit_keeps_the_tail(self, tmp_path):
        host = self.journaled_host(tmp_path)
        token = call(host, op="create")["token"]
        for _ in range(4):
            call(host, op="tap", token=token, path=[0])
        response = call(host, op="history", token=token, limit=2)
        assert len(response["history"]) == 2
        assert all(e["op"] == "tap" for e in response["history"])
        bad = call(host, op="history", token=token, limit=0)
        assert bad["error"]["type"] == "BadRequest"

    def test_history_unknown_token(self, tmp_path):
        host = self.journaled_host(tmp_path)
        response = call(host, op="history", token="nope")
        assert response["error"]["type"] == "UnknownToken"

    def test_why_joins_code_slots_and_events(self, tmp_path):
        host = self.journaled_host(tmp_path)
        token = call(host, op="create")["token"]
        call(host, op="tap", token=token, path=[0])
        call(host, op="tap", token=token, path=[0])
        response = call(host, op="why", token=token, path=[0])
        assert response["ok"]
        report = response["why"]
        assert report["owner"] == "page start (render)"
        assert report["reads"] == ["count"]
        assert len(report["events"]) == 2
        assert all(e["wrote"] == ["count"] for e in report["events"])
        by_text = call(host, op="why", token=token, text="count: 2")
        assert by_text["why"]["events"] == report["events"]

    def test_why_without_selector_is_a_bad_request(self, tmp_path):
        host = self.journaled_host(tmp_path)
        token = call(host, op="create")["token"]
        response = call(host, op="why", token=token)
        assert response["error"]["type"] == "BadRequest"
