"""Graceful shutdown and liveness: drain in-flight work, fence the
journal, answer /healthz.
"""

import json
import threading
import time
import urllib.request

from repro.api import Tracer
from repro.apps.counter import SOURCE as COUNTER
from repro.resilience.journal import JOURNAL_FILE, Journal
from repro.serve.app import make_server, shutdown_gracefully
from repro.serve.host import SessionHost


def make_host(**kwargs):
    return SessionHost(
        pool_size=4, default_source=COUNTER, tracer=Tracer(), **kwargs
    )


def serve(target):
    server = make_server(target)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def post(server, payload):
    request = urllib.request.Request(
        "http://127.0.0.1:{}/".format(server.server_address[1]),
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


class TestGracefulShutdown:
    def test_in_flight_request_completes_before_close(self):
        from repro.apps.gallery import function_gallery_source

        # A create expensive enough to still be running when the
        # shutdown lands.
        host = SessionHost(
            pool_size=4,
            default_source=function_gallery_source(rows=12, cols=6),
            tracer=Tracer(),
        )
        server, thread = serve(host)
        replies = []
        requester = threading.Thread(
            target=lambda: replies.append(post(server, {"op": "create"}))
        )
        requester.start()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and server.in_flight == 0:
            time.sleep(0.001)
        assert server.in_flight > 0
        # Shut down while the create is mid-handler: the drain must let
        # it finish rather than slamming the socket.
        drained = shutdown_gracefully(server, drain_timeout=10.0)
        requester.join(timeout=10)
        thread.join(timeout=10)
        assert drained is True
        assert replies and replies[0]["ok"]

    def test_shutdown_fences_the_journal(self, tmp_path):
        journal = Journal(tmp_path)
        host = make_host(journal=journal)
        server, thread = serve(host)
        created = post(server, {"op": "create"})
        assert created["ok"]
        drained = shutdown_gracefully(
            server, journal=journal, drain_timeout=10.0
        )
        thread.join(timeout=10)
        assert drained is True
        lines = (tmp_path / JOURNAL_FILE).read_text().splitlines()
        last = json.loads(lines[-1])
        # The clean-exit fence: token-less, so recovery replay skips it,
        # but its presence distinguishes shutdown from a crash.
        assert last["kind"] == "shutdown"
        assert "token" not in last

    def test_double_shutdown_is_idempotent(self):
        server, thread = serve(make_host())
        assert shutdown_gracefully(server) is True
        thread.join(timeout=10)
        assert shutdown_gracefully(server) is True


class TestHealthz:
    def test_healthz_reports_host_liveness_and_sessions(self):
        host = make_host()
        server, thread = serve(host)
        try:
            host.create()
            host.create()
            url = "http://127.0.0.1:{}/healthz".format(
                server.server_address[1]
            )
            with urllib.request.urlopen(url) as response:
                assert response.status == 200
                health = json.loads(response.read())
            assert health["ok"] is True
            assert health["role"] == "host"
            assert health["sessions"] == 2
            assert health["resident"] >= 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_request_tracking_counts_in_flight(self):
        server, thread = serve(make_host())
        try:
            assert server.in_flight == 0
            post(server, {"op": "create"})
            # The counter drops after the reply is written; the client
            # can read the response a hair earlier, so poll.
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline and server.in_flight:
                time.sleep(0.001)
            assert server.in_flight == 0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
