"""The acceptance soak: ≥100 concurrent sessions against a pool of 16.

Every session's display must be correct after forced eviction and
rehydration — byte-identical HTML to a never-evicted control session
driven with the same actions.
"""

import threading

from repro.apps.counter import SOURCE as COUNTER
from repro.live.session import LiveSession
from repro.api import Tracer
from repro.render.html_backend import render_html
from repro.serve.host import SessionHost

SESSIONS = 104
POOL = 16


def test_soak_100_sessions_pool_16():
    host = SessionHost(
        pool_size=POOL, default_source=COUNTER, tracer=Tracer()
    )
    # Each session gets a distinct number of taps so displays differ.
    plans = [(host.create(title="soak"), n % 5 + 1)
             for n in range(SESSIONS)]
    errors = []

    def drive(token, taps):
        try:
            for n in range(taps):
                host.tap(token, text="count: {}".format(n))
            host.render(token)
        except Exception as error:  # pragma: no cover - failure path
            errors.append((token, error))

    threads = [
        threading.Thread(target=drive, args=plan) for plan in plans
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors[:3]

    stats = host.stats()
    assert stats["sessions"] == SESSIONS
    assert stats["resident"] <= POOL + 1  # transient overflow only
    # With 104 sessions squeezing through 16 slots, eviction and
    # rehydration must both have actually happened — the soak is not a
    # soak if everything stayed resident.
    assert stats["metrics"]["sessions_evicted"] >= SESSIONS - POOL
    assert stats["metrics"]["sessions_rehydrated"] > 0

    # Force-evict everything, then compare each rehydrated display to a
    # never-evicted control session driven identically.
    for token, _taps in plans:
        host.evict(token)
    for token, taps in plans:
        html, _generation, _modified = host.render(token)
        control = LiveSession(COUNTER)
        for n in range(taps):
            control.tap_text("count: {}".format(n))
        assert html == render_html(control.display, title="soak"), (
            "display diverged after eviction for {}".format(token)
        )
