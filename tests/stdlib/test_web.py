"""The simulated web substrate."""

import pytest

from repro.core.errors import NativeError
from repro.stdlib.listings import generate_listings
from repro.stdlib.web import (
    DEFAULT_LATENCY,
    SimulatedWeb,
    make_services,
    web_host_impls,
)
from repro.system.services import Services, VirtualClock


class TestSimulatedWeb:
    def test_fetch_charges_latency(self):
        clock = VirtualClock()
        web = SimulatedWeb(clock, latency=2.0)
        web.fetch("/listings")
        web.fetch("/listings")
        assert clock.now == 4.0
        assert web.request_count == 2

    def test_listings_resource_shape(self):
        web = SimulatedWeb(VirtualClock(), listing_count=5)
        listings = web.fetch("/listings")
        assert len(listings) == 5
        for address, city, price in listings:
            assert isinstance(address, str) and isinstance(city, str)
            assert price == int(price)

    def test_unknown_resource(self):
        web = SimulatedWeb(VirtualClock())
        with pytest.raises(NativeError):
            web.fetch("/nope")

    def test_add_resource(self):
        web = SimulatedWeb(VirtualClock())
        web.add_resource("/extra", [1, 2])
        assert web.fetch("/extra") == [1, 2]


class TestListingsDataset:
    def test_deterministic(self):
        assert generate_listings(8, seed=1) == generate_listings(8, seed=1)
        assert generate_listings(8, seed=1) != generate_listings(8, seed=2)

    def test_price_range(self):
        for _addr, _city, price in generate_listings(50):
            assert 250_000 <= price < 900_000
            assert price % 1000 == 0


class TestServicesWiring:
    def test_make_services(self):
        services = make_services(latency=0.5, listing_count=3)
        web = services.get("web")
        assert web.latency == 0.5
        assert len(web.fetch("/listings")) == 3

    def test_host_impls_use_the_service(self):
        services = make_services(listing_count=4)
        impls = web_host_impls()
        listings = impls["fetch_listings"](services)
        assert len(listings) == 4
        assert services.clock.now == DEFAULT_LATENCY
