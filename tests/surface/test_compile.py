"""The end-to-end compile pipeline, including the extern FFI binding."""

import pytest

from repro.core.errors import ReproError, SyntaxProblem, TypeProblem
from repro.surface.compile import compile_source
from repro.system.runtime import Runtime
from repro.system.services import Services

COUNTER = (
    "global n : number = 0\n"
    "page start()\n  render\n    boxed\n      post n\n"
    "      on tap do\n        n := n + 1\n"
)


class TestPipeline:
    def test_compiled_program_fields(self):
        compiled = compile_source(COUNTER)
        assert compiled.source == COUNTER
        assert compiled.code.page("start") is not None
        assert len(compiled.sourcemap) == 1
        assert compiled.generated_functions == ()

    def test_syntax_errors_propagate(self):
        with pytest.raises(SyntaxProblem):
            compile_source("page start(\n")

    def test_type_errors_propagate_with_spans(self):
        with pytest.raises(TypeProblem) as caught:
            compile_source(
                "global g : number = 0\n"
                "page start()\n  render\n    g := 1\n"
            )
        assert caught.value.span is not None
        assert caught.value.span.start.line == 4

    def test_compiles_are_independent(self):
        first = compile_source(COUNTER)
        second = compile_source(COUNTER)
        assert first.code == second.code or True  # fresh names may differ
        assert first is not second


class TestExterns:
    SOURCE = (
        "extern fun roll() : number is state\n"
        "global last : number = 0\n"
        "page start()\n  render\n    boxed\n      post last\n"
        "      on tap do\n        last := roll()\n"
    )

    def test_bound_extern_runs(self):
        compiled = compile_source(
            self.SOURCE, {"roll": lambda services: 4.0}
        )
        runtime = Runtime(
            compiled.code, natives=compiled.natives, services=Services()
        ).start()
        runtime.tap_text("0")
        assert runtime.all_texts() == ["4"]

    def test_missing_implementation_rejected(self):
        with pytest.raises(TypeProblem) as caught:
            compile_source(self.SOURCE)
        assert "roll" in str(caught.value)

    def test_extra_implementations_ignored(self):
        compiled = compile_source(
            self.SOURCE,
            {"roll": lambda s: 1.0, "unused": lambda s: 2.0},
        )
        assert compiled.natives.signature("unused") is None

    def test_extern_result_conversion_checked(self):
        compiled = compile_source(
            self.SOURCE, {"roll": lambda services: "not a number"}
        )
        runtime = Runtime(
            compiled.code, natives=compiled.natives, services=Services()
        ).start()
        from repro.core.errors import EvalError

        with pytest.raises(EvalError):
            runtime.tap_text("0")
