"""The ``editable g`` sugar (our answer to the Section 5 limitation)."""

import pytest

from repro.core import ast
from repro.core.errors import TypeProblem
from repro.surface.compile import compile_source
from repro.system.runtime import Runtime


def run(source):
    compiled = compile_source(source)
    return Runtime(compiled.code, natives=compiled.natives).start()


class TestEditableSugar:
    def test_number_global_round_trip(self):
        runtime = run(
            "global apr : number = 4.5\n"
            "page start()\n  render\n    boxed\n      editable apr\n"
        )
        assert runtime.all_texts() == ["4.5"]
        runtime.edit(runtime.find_text("4.5"), "6.25")
        assert runtime.global_value("apr") == ast.Num(6.25)
        assert runtime.all_texts() == ["6.25"]

    def test_string_global_round_trip(self):
        runtime = run(
            'global name : string = "ada"\n'
            "page start()\n  render\n    boxed\n      editable name\n"
        )
        runtime.edit(runtime.find_text("ada"), "grace")
        assert runtime.global_value("name") == ast.Str("grace")

    def test_marks_box_editable(self):
        runtime = run(
            "global n : number = 1\n"
            "page start()\n  render\n    boxed\n      editable n\n"
        )
        (path, box), = runtime.find_boxes(
            lambda b: b.has_attr("editable")
        )
        assert box.has_attr("onedit")

    def test_desugaring_shape(self):
        """editable = post + editable attr + onedit handler."""
        compiled = compile_source(
            "global n : number = 1\n"
            "page start()\n  render\n    boxed\n      editable n\n"
        )
        render = compiled.code.page("start").render
        kinds = [
            type(node).__name__ for node in ast.walk(render)
        ]
        assert "Post" in kinds and "SetAttr" in kinds

    def test_requires_a_global(self):
        with pytest.raises(TypeProblem):
            compile_source(
                "page start()\n  render\n    boxed\n      editable ghost\n"
            )

    def test_rejects_structured_globals(self):
        with pytest.raises(TypeProblem):
            compile_source(
                "global xs : list number = nil(number)\n"
                "page start()\n  render\n    boxed\n      editable xs\n"
            )

    def test_render_context_only(self):
        with pytest.raises(TypeProblem):
            compile_source(
                "global n : number = 1\n"
                "page start()\n  init\n    editable n\n  render\n"
                "    post n\n"
            )

    def test_bad_input_faults_at_runtime(self):
        """Typing a non-number into a numeric editable is the documented
        num_of_str fault, not silent corruption."""
        runtime = run(
            "global n : number = 1\n"
            "page start()\n  render\n    boxed\n      editable n\n"
        )
        from repro.core.errors import EvalError

        with pytest.raises(EvalError):
            runtime.edit(runtime.find_text("1"), "not a number")
