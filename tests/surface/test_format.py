"""The source formatter: idempotent, semantics-preserving, minimal parens."""

import pytest

from repro.apps.calculator import SOURCE as CALCULATOR
from repro.apps.converter import SOURCE as CONVERTER
from repro.apps.counter import SOURCE as COUNTER
from repro.apps.mortgage import BASE_SOURCE as MORTGAGE
from repro.apps.shopping import SOURCE as SHOPPING
from repro.surface.compile import compile_source
from repro.surface.format import format_source

APPS = {
    "counter": (COUNTER, None),
    "shopping": (SHOPPING, None),
    "mortgage": (MORTGAGE, "web"),
    "converter": (CONVERTER, None),
    "calculator": (CALCULATOR, None),
}


def impls_for(marker):
    if marker == "web":
        from repro.stdlib.web import web_host_impls

        return web_host_impls()
    return None


class TestOnRealApps:
    @pytest.mark.parametrize("app", sorted(APPS), ids=sorted(APPS))
    def test_idempotent(self, app):
        source, _marker = APPS[app]
        once = format_source(source)
        assert format_source(once) == once

    @pytest.mark.parametrize("app", sorted(APPS), ids=sorted(APPS))
    def test_semantics_preserved_exactly(self, app):
        """Formatting compiles to the *identical* core program."""
        source, marker = APPS[app]
        impls = impls_for(marker)
        original = compile_source(source, impls)
        formatted = compile_source(format_source(source), impls)
        assert formatted.code == original.code


class TestCanonicalization:
    def test_spacing_normalized(self):
        messy = "global   g:number=  4\npage start()\n  render\n    post g\n"
        assert format_source(messy).startswith("global g : number = 4")

    def test_minimal_parentheses(self):
        source = (
            "page start()\n  render\n"
            "    post to_string(((1 + 2)) * 3)\n"
            "    post to_string((1 * 2) + 3)\n"
        )
        formatted = format_source(source)
        assert "post to_string((1 + 2) * 3)" in formatted
        assert "post to_string(1 * 2 + 3)" in formatted

    def test_needed_parentheses_kept(self):
        source = (
            "page start()\n  render\n    post to_string(1 - (2 - 3))\n"
        )
        assert "1 - (2 - 3)" in format_source(source)

    def test_elif_resugared(self):
        source = (
            "page start()\n  render\n"
            "    if 1 then\n      post 1\n"
            "    elif 2 then\n      post 2\n"
            "    else\n      post 3\n"
        )
        formatted = format_source(source)
        assert "elif 2 then" in formatted
        assert formatted.count("else") == 1  # no nested else-if ladder

    def test_string_escapes_round_trip(self):
        source = (
            'page start()\n  render\n    post "a\\"b\\\\c\\nd"\n'
        )
        formatted = format_source(source)
        assert format_source(formatted) == formatted
        compiled_a = compile_source(source)
        compiled_b = compile_source(formatted)
        assert compiled_a.code == compiled_b.code

    def test_font_size_spelling(self):
        source = (
            "page start()\n  render\n    boxed\n      box.font_size := 2\n"
        )
        assert "box.font_size := 2" in format_source(source)

    def test_blank_line_between_decls(self):
        source = "global a : number = 1\nglobal b : number = 2\n"
        formatted = format_source(source)
        assert "= 1\n\nglobal b" in formatted

    def test_manipulated_source_normalizes(self):
        """Direct manipulation output stays canonical after formatting."""
        from repro.live.session import LiveSession

        session = LiveSession(
            'page start()\n  render\n    boxed\n      post "x"\n'
        )
        session.manipulate(
            session.runtime.find_text("x"), "margin", 2
        )
        formatted = format_source(session.source)
        assert format_source(formatted) == formatted
        assert "box.margin := 2" in formatted
