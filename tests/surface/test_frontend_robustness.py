"""Front-end robustness: arbitrary input must produce *diagnostics*,
never internal exceptions.

The live editor runs the pipeline on every keystroke, so it sees every
half-typed state of every program; a crash anywhere in
lex/parse/resolve/check would take the IDE down.  These properties fuzz
with (a) arbitrary text, (b) randomly mutated well-formed programs.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.counter import SOURCE as COUNTER
from repro.apps.mortgage import BASE_SOURCE
from repro.core.errors import ReproError
from repro.surface.compile import compile_source
from repro.surface.lexer import tokenize
from repro.surface.parser import parse
from repro.surface.typecheck import typecheck_problems

_SETTINGS = settings(
    max_examples=120, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_SOURCE_ALPHABET = (
    "abcxyz0123456789 \n\t\"'()[]:=+-*/%<>|.,_"
    "globalpagefunrenderinitboxedpostontapifthenelsefordowhile"
)


def pipeline(source):
    """Run the full front end; diagnostics are fine, crashes are not."""
    try:
        compile_source(source)
    except ReproError:
        pass  # SyntaxProblem / TypeProblem / ReproError: all reportable


class TestArbitraryText:
    @_SETTINGS
    @given(source=st.text(alphabet=_SOURCE_ALPHABET, max_size=200))
    def test_never_crashes(self, source):
        pipeline(source)

    @_SETTINGS
    @given(source=st.text(max_size=100))
    def test_full_unicode_never_crashes(self, source):
        pipeline(source)

    @_SETTINGS
    @given(source=st.text(alphabet=_SOURCE_ALPHABET, max_size=200))
    def test_lexer_total(self, source):
        try:
            tokens = tokenize(source)
        except ReproError:
            return
        assert tokens[-1].kind == "EOF"


class TestMutatedPrograms:
    """Keystroke simulation: valid programs with point mutations."""

    @_SETTINGS
    @given(
        base=st.sampled_from([COUNTER, BASE_SOURCE]),
        position=st.integers(0, 10_000),
        action=st.sampled_from(["delete", "insert", "truncate"]),
        char=st.sampled_from(list(" :=()\"x1\n")),
    )
    def test_point_mutations_never_crash(self, base, position, action, char):
        position = position % max(len(base), 1)
        if action == "delete":
            mutated = base[:position] + base[position + 1:]
        elif action == "insert":
            mutated = base[:position] + char + base[position:]
        else:
            mutated = base[:position]
        pipeline(mutated)

    @_SETTINGS
    @given(
        cut=st.integers(1, 60),
    )
    def test_every_prefix_of_the_mortgage_app(self, cut):
        """Typing the program top to bottom: every line-prefix state."""
        lines = BASE_SOURCE.split("\n")
        prefix = "\n".join(lines[: cut % len(lines)])
        pipeline(prefix)
