"""The indentation-aware lexer."""

import pytest

from repro.core.errors import SyntaxProblem
from repro.surface.lexer import tokenize
from repro.surface.tokens import (
    DEDENT,
    EOF,
    IDENT,
    INDENT,
    KEYWORD,
    NEWLINE,
    NUMBER,
    OP,
    STRING,
)


def kinds(source):
    return [token.kind for token in tokenize(source)]


def texts(source, kind=None):
    return [
        token.text
        for token in tokenize(source)
        if kind is None or token.kind == kind
    ]


class TestBasics:
    def test_empty_source(self):
        assert kinds("") == [EOF]

    def test_numbers(self):
        assert texts("1 2.5 0.25", NUMBER) == ["1", "2.5", "0.25"]

    def test_keywords_vs_idents(self):
        tokens = tokenize("if foo then")
        assert [t.kind for t in tokens[:3]] == [KEYWORD, IDENT, KEYWORD]

    def test_operators_longest_match(self):
        assert texts("a := b == c <= d", OP) == [":=", "==", "<="]

    def test_concat_operator(self):
        assert texts('a || b', OP) == ["||"]

    def test_single_equals(self):
        assert texts("for i = 1 to 2 do", OP) == ["="]

    def test_unexpected_character(self):
        with pytest.raises(SyntaxProblem):
            tokenize("a @ b")


class TestStrings:
    def test_simple(self):
        assert texts('"hello world"', STRING) == ["hello world"]

    def test_escapes(self):
        assert texts(r'"a\"b\\c\nd"', STRING) == ['a"b\\c\nd']

    def test_unterminated(self):
        with pytest.raises(SyntaxProblem):
            tokenize('"oops')

    def test_newline_inside(self):
        with pytest.raises(SyntaxProblem):
            tokenize('"oops\n"')

    def test_unknown_escape(self):
        with pytest.raises(SyntaxProblem):
            tokenize(r'"\q"')


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("a // comment here\nb", IDENT) == ["a", "b"]

    def test_comment_only_line_produces_nothing(self):
        source = "a\n// note\nb\n"
        assert kinds(source).count(NEWLINE) == 2


class TestIndentation:
    def test_indent_dedent_pairing(self):
        source = "a\n  b\n  c\nd\n"
        sequence = kinds(source)
        assert sequence.count(INDENT) == 1
        assert sequence.count(DEDENT) == 1

    def test_nested_blocks(self):
        source = "a\n  b\n    c\nd\n"
        sequence = kinds(source)
        assert sequence.count(INDENT) == 2
        assert sequence.count(DEDENT) == 2

    def test_dedents_closed_at_eof(self):
        sequence = kinds("a\n  b")
        assert sequence.count(DEDENT) == 1
        assert sequence[-1] == EOF

    def test_blank_lines_ignored(self):
        source = "a\n\n  b\n\n  c\n"
        assert kinds(source).count(INDENT) == 1

    def test_inconsistent_dedent_rejected(self):
        source = "a\n    b\n  c\n"
        with pytest.raises(SyntaxProblem):
            tokenize(source)

    def test_tabs_count_as_four(self):
        source = "a\n\tb\n    c\n"
        assert kinds(source).count(INDENT) == 1

    @pytest.mark.parametrize(
        "source", ["a\n\t", "a\n   ", "\t", "  ", "a\n  \t  "],
        ids=repr,
    )
    def test_trailing_indentation_terminates(self, source):
        """Regression: a file ending in bare indentation must lex, not
        hang ('' in ' \\t' is True — found by the fuzz suite)."""
        assert kinds(source)[-1] == EOF


class TestSpans:
    def test_line_and_column_tracking(self):
        tokens = tokenize('x\n  post "hi"\n')
        post = [t for t in tokens if t.text == "post"][0]
        assert post.span.start.line == 2
        assert post.span.start.column == 2
