"""Lowering to the core calculus: the §4.1 desugarings, verified by
running the lowered code (behaviour) and inspecting its shape (structure).
"""

import pytest

from repro.core import ast
from repro.core.defs import FunDef
from repro.core.effects import PURE, RENDER, STATE
from repro.core.types import NUMBER, TupleType
from repro.surface.compile import compile_source
from repro.system.runtime import Runtime

START = "page start()\n  render\n    post 1\n"


def lowered(source):
    return compile_source(source)


def run(source, host_impls=None):
    compiled = compile_source(source, host_impls)
    return Runtime(compiled.code, natives=compiled.natives).start()


class TestLoopDesugaring:
    def test_loops_become_global_functions(self):
        """'Loops are expressible in our calculus via recursion through
        global functions' — the lowering does exactly that."""
        compiled = lowered(
            "page start()\n  render\n"
            "    for i = 1 to 3 do\n      post i\n"
            "    while 0 do\n      post 0\n"
            "    for x in [1] do\n      post x\n"
        )
        kinds = sorted(
            name.split("_")[0] for name in compiled.generated_functions
        )
        assert kinds == ["$forin", "$range", "$while"]
        for name in compiled.generated_functions:
            definition = compiled.code.function(name)
            assert isinstance(definition, FunDef)
            # Loop state goes in, loop state comes out.
            assert definition.type.param == definition.type.result

    def test_generated_function_carries_loop_effect(self):
        compiled = lowered(
            "global g : number = 0\n" + START +
            "fun f()\n  for i = 1 to 3 do\n    g := g + i\n"
        )
        (name,) = compiled.generated_functions
        assert compiled.code.function(name).type.effect is STATE

    def test_range_loop_behaviour(self):
        runtime = run(
            "page start()\n  render\n    for i = 1 to 4 do\n"
            "      post i * i\n"
        )
        assert runtime.all_texts() == ["1", "4", "9", "16"]

    def test_range_loop_inclusive_and_empty(self):
        runtime = run(
            "page start()\n  render\n    for i = 3 to 3 do\n      post i\n"
            "    for i = 5 to 4 do\n      post i\n"
        )
        assert runtime.all_texts() == ["3"]

    def test_while_loop_carries_mutation(self):
        runtime = run(
            "page start()\n  render\n    var n := 1\n"
            "    while n < 100 do\n      n := n * 2\n    post n\n"
        )
        assert runtime.all_texts() == ["128"]

    def test_for_in_binds_elements(self):
        runtime = run(
            'page start()\n  render\n    for w in ["a", "b"] do\n'
            "      post w || w\n"
        )
        assert runtime.all_texts() == ["aa", "bb"]

    def test_nested_loops(self):
        runtime = run(
            "page start()\n  render\n    var total := 0\n"
            "    for i = 1 to 3 do\n      for j = 1 to i do\n"
            "        total := total + 1\n    post total\n"
        )
        assert runtime.all_texts() == ["6"]

    def test_loop_over_thousands_of_iterations(self):
        """Tail recursion through the CEK machine: no stack growth."""
        runtime = run(
            "page start()\n  render\n    var n := 0\n"
            "    for i = 1 to 5000 do\n      n := n + i\n    post n\n"
        )
        assert runtime.all_texts() == ["12502500"]


class TestMutationScopes:
    def test_if_branch_mutations_merge(self):
        runtime = run(
            "page start()\n  render\n    var x := 0\n    var y := 0\n"
            "    if 1 then\n      x := 10\n    else\n      y := 20\n"
            "    post x || \",\" || y\n"
        )
        assert runtime.all_texts() == ["10,0"]

    def test_if_without_else_preserves_values(self):
        runtime = run(
            "page start()\n  render\n    var x := 7\n"
            "    if 0 then\n      x := 9\n    post x\n"
        )
        assert runtime.all_texts() == ["7"]

    def test_boxed_body_mutations_escape(self):
        """The amortization pattern: balance updates inside a boxed row
        must flow to the next iteration (via ER-BOXED's value return)."""
        runtime = run(
            "page start()\n  render\n    var b := 100\n"
            "    for i = 1 to 3 do\n      boxed\n"
            "        b := b - 10\n        post b\n"
        )
        assert runtime.all_texts() == ["90", "80", "70"]

    def test_straight_line_shadowing(self):
        runtime = run(
            "page start()\n  render\n    var x := 1\n    x := x + 1\n"
            "    x := x * 10\n    post x\n"
        )
        assert runtime.all_texts() == ["20"]


class TestRecordsAndCalls:
    def test_records_erase_to_tuples(self):
        compiled = lowered(
            "record p\n  x : number\n  y : number\n"
            "global o : p = p(1, 2)\n" + START
        )
        definition = compiled.code.global_("o")
        assert definition.type == TupleType((NUMBER, NUMBER))
        assert definition.init == ast.Tuple((ast.Num(1), ast.Num(2)))

    def test_field_access_is_projection(self):
        runtime = run(
            "record p\n  x : number\n  y : number\n" +
            "page start()\n  render\n    var v := p(3, 4)\n"
            "    post v.y\n"
        )
        assert runtime.all_texts() == ["4"]

    def test_functions_take_argument_tuples(self):
        compiled = lowered(
            START + "fun f(a : number, b : number) : number\n"
            "  return a + b\n"
        )
        assert compiled.code.function("f").type.param == TupleType(
            (NUMBER, NUMBER)
        )

    def test_call_and_return(self):
        runtime = run(
            "page start()\n  render\n    post f(20, 1)\n"
            "fun f(a : number, b : number) : number\n  return a + 2 * b\n"
        )
        assert runtime.all_texts() == ["22"]

    def test_string_coercion_in_concat(self):
        runtime = run('page start()\n  render\n    post 1 || "+" || 2\n')
        assert runtime.all_texts() == ["1+2"]

    def test_booleans_are_numbers(self):
        runtime = run(
            "page start()\n  render\n    if true then\n      post 1\n"
            "    if false then\n      post 2\n"
        )
        assert runtime.all_texts() == ["1"]


class TestHandlersAndPages:
    def test_handler_captures_loop_variable_by_value(self):
        runtime = run(
            "global picked : number = -1\n"
            "page start()\n  render\n"
            "    for i = 1 to 3 do\n      boxed\n        post i\n"
            "        on tap do\n          picked := i\n"
            "    post picked\n"
        )
        runtime.tap_text("2")
        assert runtime.global_value("picked") == ast.Num(2)

    def test_multi_argument_page(self):
        runtime = run(
            "page start()\n  render\n    boxed\n      post \"go\"\n"
            "      on tap do\n        push detail(6, 7)\n"
            "page detail(a : number, b : number)\n  render\n"
            "    post a * b\n"
        )
        runtime.tap_text("go")
        assert runtime.all_texts() == ["42"]

    def test_edit_handler_receives_text(self):
        runtime = run(
            'global name : string = ""\n'
            "page start()\n  render\n    boxed\n      post name\n"
            "      on edit(t) do\n        name := upper(t)\n"
        )
        runtime.edit(runtime.find_boxes(lambda b: b.has_attr("onedit"))[0][0],
                     "ada")
        assert runtime.global_value("name") == ast.Str("ADA")


class TestCoreRecheck:
    def test_lowered_code_passes_core_checker(self):
        """Every compile re-derives C ⊢ C on the output (defence in
        depth); spot-check that the flag is actually on."""
        from repro.typing.program import code_problems

        compiled = lowered(
            "global g : number = 0\n"
            "page start()\n  init\n    g := 1\n  render\n"
            "    for i = 1 to 3 do\n      boxed\n        post g + i\n"
        )
        assert code_problems(compiled.code, compiled.natives) == []
