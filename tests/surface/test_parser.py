"""The recursive-descent parser."""

import pytest

from repro.core.errors import SyntaxProblem
from repro.surface import surface_ast as S
from repro.surface.parser import parse


def parse_stmts(body):
    """Parse a start page whose render body is ``body`` (indented by 4)."""
    lines = ["page start()", "  render"]
    lines += ["    " + line for line in body.split("\n")]
    program = parse("\n".join(lines) + "\n")
    return program.decls[0].render_block.stmts


def parse_expr(text):
    (stmt,) = parse_stmts(text)
    assert isinstance(stmt, S.SExprStmt)
    return stmt.value


class TestDeclarations:
    def test_global(self):
        program = parse("global g : number = 42\n")
        (decl,) = program.decls
        assert isinstance(decl, S.DGlobal)
        assert decl.name == "g"
        assert isinstance(decl.type_expr, S.TNumber)
        assert decl.init.value == 42

    def test_record(self):
        program = parse("record point\n  x : number\n  y : number\n")
        (decl,) = program.decls
        assert isinstance(decl, S.DRecord)
        assert [name for name, _t, _s in decl.fields] == ["x", "y"]

    def test_fun_with_params_and_return(self):
        program = parse(
            "fun f(a : number, b : string) : number\n  return a\n"
        )
        (decl,) = program.decls
        assert isinstance(decl, S.DFun)
        assert [name for name, _ in decl.params] == ["a", "b"]
        assert isinstance(decl.return_type, S.TNumber)

    def test_extern(self):
        program = parse(
            "extern fun fetch() : list number is state\n"
        )
        (decl,) = program.decls
        assert isinstance(decl, S.DExtern)
        assert decl.effect_name == "state"
        assert isinstance(decl.return_type, S.TList)

    def test_extern_defaults_to_state(self):
        program = parse("extern fun fetch() : number\n")
        assert program.decls[0].effect_name == "state"

    def test_page_with_both_bodies(self):
        program = parse(
            "page start()\n  init\n    pop\n  render\n    post 1\n"
        )
        (decl,) = program.decls
        assert decl.init_block is not None
        assert decl.render_block is not None

    def test_page_render_only(self):
        program = parse("page start()\n  render\n    post 1\n")
        assert program.decls[0].init_block is None

    def test_duplicate_render_body_rejected(self):
        with pytest.raises(SyntaxProblem):
            parse(
                "page start()\n  render\n    post 1\n  render\n    post 2\n"
            )

    def test_unknown_declaration(self):
        with pytest.raises(SyntaxProblem):
            parse("banana x\n")


class TestTypes:
    def test_all_type_forms(self):
        program = parse(
            "fun f(a : number, b : string, c : (), d : list number, "
            "e : point) : ()\n  pop\n"
        )
        types = [t for _n, t in program.decls[0].params]
        assert isinstance(types[0], S.TNumber)
        assert isinstance(types[1], S.TString)
        assert isinstance(types[2], S.TUnit)
        assert isinstance(types[3], S.TList)
        assert isinstance(types[4], S.TName)

    def test_nested_list_type(self):
        program = parse("global g : list list number = nil(list number)\n")
        outer = program.decls[0].type_expr
        assert isinstance(outer.element, S.TList)


class TestStatements:
    def test_var_and_assign(self):
        stmts = parse_stmts("var x := 1\nx := 2")
        assert isinstance(stmts[0], S.SVarDecl)
        assert isinstance(stmts[1], S.SAssign)

    def test_if_elif_else_desugars_to_nested_if(self):
        stmts = parse_stmts(
            "if a then\n  post 1\nelif b then\n  post 2\nelse\n  post 3"
        )
        (conditional,) = stmts
        assert isinstance(conditional, S.SIf)
        (nested,) = conditional.else_block.stmts
        assert isinstance(nested, S.SIf)
        assert nested.else_block is not None

    def test_loops(self):
        for_in, for_range, while_ = parse_stmts(
            "for x in items do\n  post x\n"
            "for i = 1 to 10 do\n  post i\n"
            "while c do\n  post 1"
        )
        assert isinstance(for_in, S.SForIn) and for_in.var == "x"
        assert isinstance(for_range, S.SForRange)
        assert isinstance(while_, S.SWhile)

    def test_boxed_gets_sequential_ids(self):
        stmts = parse_stmts("boxed\n  post 1\nboxed\n  post 2")
        assert stmts[0].box_id == 0
        assert stmts[1].box_id == 1

    def test_box_attr_with_underscore_mapping(self):
        (stmt,) = parse_stmts("box.font_size := 2")
        assert stmt.attr == "font size"

    def test_handlers(self):
        tap, edit = parse_stmts(
            "on tap do\n  pop\non edit(t) do\n  pop"
        )
        assert tap.kind == "tap" and tap.param is None
        assert edit.kind == "edit" and edit.param == "t"

    def test_push_pop_return(self):
        push, pop = parse_stmts("push detail(1, x)\npop")
        assert push.page == "detail" and len(push.args) == 2
        assert isinstance(pop, S.SPop)

    def test_return_forms(self):
        program = parse("fun f() : number\n  return 1\n")
        assert program.decls[0].body.stmts[0].value is not None
        program = parse("fun g()\n  return\n")
        assert program.decls[0].body.stmts[0].value is None


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_concat_binds_looser_than_add(self):
        expr = parse_expr('"n: " || 1 + 2')
        assert expr.op == "||"
        assert expr.right.op == "+"

    def test_comparison_over_concat(self):
        expr = parse_expr('a || b == c || d')
        assert expr.op == "=="

    def test_and_or_not(self):
        expr = parse_expr("not a and b or c")
        assert expr.op == "or"
        assert expr.left.op == "and"
        assert expr.left.left.op == "not"

    def test_unary_minus(self):
        expr = parse_expr("-x + 1")
        assert expr.op == "+"
        assert expr.left.op == "-"

    def test_field_access_chain(self):
        expr = parse_expr("a.b.c")
        assert isinstance(expr, S.EField) and expr.name == "c"
        assert expr.target.name == "b"

    def test_call_with_args(self):
        expr = parse_expr("f(1, g(2), x)")
        assert isinstance(expr, S.ECall)
        assert len(expr.args) == 3
        assert isinstance(expr.args[1], S.ECall)

    def test_list_literal_and_nil(self):
        lst = parse_expr("[1, 2, 3]")
        assert isinstance(lst, S.EListLit) and len(lst.items) == 3
        nil = parse_expr("nil(number)")
        assert isinstance(nil, S.ENil)

    def test_booleans(self):
        expr = parse_expr("true")
        assert isinstance(expr, S.EBool) and expr.value is True

    def test_missing_expression(self):
        with pytest.raises(SyntaxProblem):
            parse_stmts("post ")

    def test_missing_then(self):
        with pytest.raises(SyntaxProblem):
            parse_stmts("if a\n  post 1")
