"""Name resolution: symbol tables, record resolution, cycles."""

import pytest

from repro.core.effects import PURE, STATE
from repro.core.errors import TypeProblem
from repro.core.types import NUMBER, STRING, TupleType
from repro.surface import surface_ast as S
from repro.surface.parser import parse
from repro.surface.resolve import resolve


PROGRAM = """\
record point
  x : number
  y : number

record path
  label : string
  points : list point

global origin : point = point(0, 0)

extern fun fetch() : list point is state

fun norm(p : point) : number
  return sqrt(p.x * p.x + p.y * p.y)

page start()
  render
    post 1

page detail(p : point, title : string)
  render
    post title
"""


@pytest.fixture
def env():
    return resolve(parse(PROGRAM))


class TestTables:
    def test_records(self, env):
        point = env.records["point"]
        assert point.field_names == ("x", "y")
        assert point.field_index("y") == 2
        assert point.field_index("z") is None
        assert point.field_type("x") == S.S_NUMBER

    def test_record_core_erasure(self, env):
        assert env.records["point"].core_type(env.records) == TupleType(
            (NUMBER, NUMBER)
        )

    def test_nested_record_erasure(self, env):
        core = env.records["path"].core_type(env.records)
        assert str(core) == "(string, list (number, number))"

    def test_globals(self, env):
        assert env.globals["origin"].stype == S.SRec("point")

    def test_functions(self, env):
        sig = env.funs["norm"]
        assert sig.param_names == ("p",)
        assert sig.param_stypes == (S.SRec("point"),)
        assert sig.return_stype == S.S_NUMBER

    def test_externs(self, env):
        sig = env.externs["fetch"]
        assert sig.effect is STATE
        assert sig.return_stype == S.SList(S.SRec("point"))

    def test_pages(self, env):
        sig = env.pages["detail"]
        assert sig.param_names == ("p", "title")

    def test_lookup_callable(self, env):
        assert env.lookup_callable("norm")[0] == "fun"
        assert env.lookup_callable("fetch")[0] == "extern"
        assert env.lookup_callable("point")[0] == "record"
        assert env.lookup_callable("nothing") == (None, None)


class TestErrors:
    def test_duplicate_names_across_kinds(self):
        source = "global x : number = 1\nfun x()\n  pop\n"
        with pytest.raises(TypeProblem):
            resolve(parse(source))

    def test_duplicate_record_fields(self):
        source = "record r\n  a : number\n  a : string\n"
        with pytest.raises(TypeProblem):
            resolve(parse(source))

    def test_duplicate_parameters(self):
        source = "fun f(a : number, a : number)\n  pop\n"
        with pytest.raises(TypeProblem):
            resolve(parse(source))

    def test_unknown_record_type(self):
        source = "global g : ghost = 1\n"
        with pytest.raises(TypeProblem):
            resolve(parse(source))

    def test_callable_shadowing_builtin(self):
        source = "fun floor(x : number) : number\n  return x\n"
        with pytest.raises(TypeProblem):
            resolve(parse(source))

    def test_global_may_share_builtin_name(self):
        """Globals aren't callable, so 'count' can be a global (the
        paper's own example uses cents->count AND a count-like global)."""
        source = "global count : number = 0\n"
        env = resolve(parse(source))
        assert "count" in env.globals

    def test_directly_recursive_record(self):
        source = "record node\n  next : node\n"
        with pytest.raises(TypeProblem) as caught:
            resolve(parse(source))
        assert "recursive" in str(caught.value)

    def test_mutually_recursive_records(self):
        source = "record a\n  b : b\nrecord b\n  a : list a\n"
        with pytest.raises(TypeProblem):
            resolve(parse(source))

    def test_forward_reference_allowed(self):
        source = "record a\n  b : b\nrecord b\n  n : number\n"
        env = resolve(parse(source))
        assert set(env.records) == {"a", "b"}
