"""The UI-code source map: boxed statements ↔ source spans."""

import pytest

from repro.surface.parser import parse
from repro.surface.sourcemap import build_sourcemap

SOURCE = """\
page start()
  render
    boxed
      box.margin := 1
      post "header"
    for i = 1 to 3 do
      boxed
        post i
        boxed
          post "nested"

fun helper()
  boxed
    post "in helper"
"""


@pytest.fixture
def sourcemap():
    return build_sourcemap(parse(SOURCE))


class TestCollection:
    def test_all_boxed_statements_found(self, sourcemap):
        assert len(sourcemap) == 4
        assert sourcemap.box_ids() == (0, 1, 2, 3)

    def test_spans_cover_the_statement(self, sourcemap):
        header = sourcemap.entry(0)
        assert header.span.start.line == 3
        assert header.span.contains_line(5)

    def test_owner_recorded(self, sourcemap):
        assert sourcemap.entry(0).page == "start"
        assert sourcemap.entry(3).page == "helper"

    def test_attr_spans_only_direct_children(self, sourcemap):
        header = sourcemap.entry(0)
        assert set(header.attr_spans) == {"margin"}
        loop_box = sourcemap.entry(1)
        assert loop_box.attr_spans == {}

    def test_body_indent(self, sourcemap):
        assert sourcemap.entry(0).body_indent == 6
        assert sourcemap.entry(2).body_indent == 10


class TestLookup:
    def test_boxed_at_line_innermost(self, sourcemap):
        assert sourcemap.boxed_at_line(10).box_id == 2  # nested box
        assert sourcemap.boxed_at_line(8).box_id == 1
        assert sourcemap.boxed_at_line(4).box_id == 0

    def test_boxed_at_line_outside(self, sourcemap):
        assert sourcemap.boxed_at_line(1) is None

    def test_boxed_at_offset(self, sourcemap):
        source = SOURCE
        offset = source.index('"nested"')
        assert sourcemap.boxed_at_offset(offset).box_id == 2

    def test_span_of(self, sourcemap):
        assert sourcemap.span_of(0) is not None
        assert sourcemap.span_of(99) is None


class TestHandlersAndBranches:
    def test_boxed_inside_if_and_handler_found(self):
        source = (
            "page start()\n  render\n"
            "    if 1 then\n      boxed\n        post 1\n"
            "    boxed\n      on tap do\n        pop\n"
        )
        sourcemap = build_sourcemap(parse(source))
        assert len(sourcemap) == 2
