"""Source positions and spans."""

import pytest

from repro.surface.span import Pos, Span, dummy_span


def span(l1, c1, o1, l2, c2, o2):
    return Span(Pos(l1, c1, o1), Pos(l2, c2, o2))


class TestFormatting:
    def test_pos_one_based_column_display(self):
        assert str(Pos(3, 0, 10)) == "3:1"

    def test_single_line_span(self):
        assert str(span(2, 4, 10, 2, 9, 15)) == "line 2, cols 5-10"

    def test_multi_line_span(self):
        assert str(span(2, 0, 10, 5, 3, 40)) == "lines 2-5"


class TestContainment:
    def test_offsets_half_open(self):
        region = span(1, 0, 10, 1, 5, 15)
        assert region.contains_offset(10)
        assert region.contains_offset(14)
        assert not region.contains_offset(15)
        assert not region.contains_offset(9)

    def test_lines_inclusive(self):
        region = span(2, 0, 0, 4, 0, 0)
        assert region.contains_line(2)
        assert region.contains_line(4)
        assert not region.contains_line(5)

    def test_length(self):
        assert span(1, 0, 3, 1, 0, 9).length == 6


class TestMerge:
    def test_merge_covers_both(self):
        left = span(1, 0, 0, 1, 4, 4)
        right = span(3, 0, 20, 3, 2, 22)
        merged = left.merge(right)
        assert merged.start.offset == 0
        assert merged.end.offset == 22

    def test_merge_order_independent(self):
        left = span(1, 0, 0, 1, 4, 4)
        right = span(3, 0, 20, 3, 2, 22)
        assert left.merge(right) == right.merge(left)


class TestDummy:
    def test_dummy_is_empty(self):
        region = dummy_span()
        assert region.length == 0
