"""Surface type/effect checking, including effect inference."""

import pytest

from repro.core.effects import PURE, RENDER, STATE
from repro.core.errors import TypeProblem
from repro.surface.parser import parse
from repro.surface.typecheck import typecheck, typecheck_problems

START = "page start()\n  render\n    post 1\n"


def check(source):
    return typecheck(parse(source))


def problems_of(source):
    _env, problems = typecheck_problems(parse(source))
    return problems


def rejected(source, fragment=None):
    problems = problems_of(source)
    assert problems, "expected a type problem"
    if fragment is not None:
        assert any(fragment in str(p) for p in problems), problems[0]
    return problems


class TestEffectInference:
    def test_pure_function(self):
        env = check(START + "fun f(x : number) : number\n  return x + 1\n")
        assert env.funs["f"].effect is PURE

    def test_render_function(self):
        env = check(START + "fun show()\n  boxed\n    post 1\n")
        assert env.funs["show"].effect is RENDER

    def test_state_function(self):
        env = check(
            "global g : number = 0\n" + START
            + "fun bump()\n  g := g + 1\n"
        )
        assert env.funs["bump"].effect is STATE

    def test_effect_propagates_through_calls(self):
        env = check(
            START
            + "fun outer()\n  inner()\nfun inner()\n  boxed\n    post 1\n"
        )
        assert env.funs["outer"].effect is RENDER

    def test_recursive_function_effect_converges(self):
        env = check(
            "global g : number = 0\n" + START
            + "fun down(n : number)\n"
            + "  if n > 0 then\n    g := g - 1\n    down(n - 1)\n"
        )
        assert env.funs["down"].effect is STATE

    def test_handler_body_does_not_make_function_stateful(self):
        """on-tap bodies are separate s closures inside render code."""
        env = check(
            "global g : number = 0\n" + START
            + "fun cell()\n  boxed\n    post g\n    on tap do\n"
            + "      g := g + 1\n"
        )
        assert env.funs["cell"].effect is RENDER

    def test_mixed_effects_rejected(self):
        rejected(
            "global g : number = 0\n" + START
            + "fun bad()\n  g := 1\n  boxed\n    post 1\n",
            "both render and state",
        )


class TestEffectPlacement:
    def test_render_code_cannot_assign_globals(self):
        rejected(
            "global g : number = 0\n"
            "page start()\n  render\n    g := 1\n",
            "render code can only read",
        )

    def test_init_code_cannot_build_boxes(self):
        rejected(
            "page start()\n  init\n    boxed\n      post 1\n  render\n"
            "    post 1\n",
            "render code",
        )

    def test_handler_can_push_and_assign(self):
        check(
            "global g : number = 0\n"
            "page start()\n  render\n    boxed\n      post g\n"
            "      on tap do\n        g := 1\n        pop\n"
        )

    def test_handler_cannot_post(self):
        rejected(
            "page start()\n  render\n    boxed\n      on tap do\n"
            "        post 1\n"
        )

    def test_push_outside_state_rejected(self):
        rejected(
            "page start()\n  render\n    push start()\n",
            "mutates program state",
        )

    def test_state_extern_not_callable_from_render(self):
        rejected(
            "extern fun fetch() : number is state\n"
            "page start()\n  render\n    post fetch()\n",
            "cannot be called from",
        )

    def test_pure_extern_callable_from_render(self):
        check(
            "extern fun f(x : number) : number is pure\n"
            "page start()\n  render\n    post f(1)\n"
        )


class TestLocals:
    def test_var_shadowing_global_rejected(self):
        rejected(
            "global g : number = 0\n"
            "page start()\n  render\n    var g := 1\n    post g\n",
            "shadow",
        )

    def test_double_declaration_rejected(self):
        rejected(
            "page start()\n  render\n    var x := 1\n    var x := 2\n"
        )

    def test_assignment_type_must_match(self):
        rejected(
            'page start()\n  render\n    var x := 1\n    x := "two"\n'
        )

    def test_loop_variable_immutable(self):
        rejected(
            "page start()\n  render\n    for i = 1 to 3 do\n"
            "      i := 5\n",
            "immutable",
        )

    def test_parameter_immutable(self):
        rejected(
            START + "fun f(x : number)\n  x := 1\n", "immutable"
        )

    def test_handler_cannot_assign_enclosing_local(self):
        """Handlers capture by value; assigning a copy is rejected."""
        rejected(
            "page start()\n  render\n    var x := 1\n    boxed\n"
            "      post x\n      on tap do\n        x := 2\n",
            "immutable",
        )

    def test_undefined_variable(self):
        rejected("page start()\n  render\n    post ghost\n", "undefined")

    def test_block_scoping(self):
        rejected(
            "page start()\n  render\n    if 1 then\n      var x := 1\n"
            "    post x\n",
            "undefined",
        )


class TestExpressions:
    def test_record_construction_and_field_access(self):
        check(
            "record p\n  x : number\n" + START
            + "fun f() : number\n  var v := p(3)\n  return v.x\n"
        )

    def test_record_constructor_arity(self):
        rejected(
            "record p\n  x : number\n" + START
            + "fun f() : p\n  return p(1, 2)\n"
        )

    def test_field_access_on_non_record(self):
        rejected(START + "fun f() : number\n  return 1.x\n", "non-record")

    def test_unknown_field(self):
        rejected(
            "record p\n  x : number\n" + START
            + "fun f(v : p) : number\n  return v.y\n",
            "no field",
        )

    def test_concat_coerces_numbers(self):
        check(START + 'fun f() : string\n  return "n=" || 42\n')

    def test_concat_rejects_records(self):
        rejected(
            "record p\n  x : number\n" + START
            + 'fun f(v : p) : string\n  return "" || v\n'
        )

    def test_equality_needs_same_types(self):
        rejected(START + 'fun f() : number\n  return 1 == "1"\n')

    def test_arith_needs_numbers(self):
        rejected(START + 'fun f() : number\n  return 1 + "2"\n')

    def test_list_literal_homogeneous(self):
        rejected(START + 'fun f() : list number\n  return [1, "2"]\n')

    def test_empty_list_needs_nil(self):
        rejected(
            START + "fun f() : list number\n  return []\n", "nil"
        )

    def test_list_builtins(self):
        check(
            START
            + "fun f() : number\n  var xs := [1, 2, 3]\n"
            + "  return length(xs) + get(xs, 0)\n"
        )

    def test_builtin_arity(self):
        rejected(START + "fun f() : number\n  return floor(1, 2)\n")

    def test_unknown_function(self):
        rejected(START + "fun f() : number\n  return zorp(1)\n", "unknown")


class TestStatements:
    def test_return_must_be_last(self):
        rejected(
            START + "fun f() : number\n  return 1\n  post 2\n",
            "final statement",
        )

    def test_missing_return_for_nonunit(self):
        rejected(
            START + "fun f() : number\n  var x := 1\n",
            "must end with 'return'",
        )

    def test_return_type_mismatch(self):
        rejected(START + 'fun f() : number\n  return "one"\n')

    def test_return_in_page_rejected(self):
        rejected(
            "page start()\n  render\n    return 1\n",
            "function bodies",
        )

    def test_for_in_requires_list(self):
        rejected(
            "page start()\n  render\n    for x in 5 do\n      post x\n",
            "needs a list",
        )

    def test_condition_must_be_number(self):
        rejected(
            'page start()\n  render\n    if "yes" then\n      post 1\n'
        )

    def test_push_arity_and_types(self):
        source = (
            "page start()\n  render\n    boxed\n      on tap do\n"
            "        push detail(1)\n"
            "page detail(a : number, b : number)\n  render\n    post a\n"
        )
        rejected(source, "argument")

    def test_attr_value_types(self):
        rejected(
            'page start()\n  render\n    box.margin := "wide"\n'
        )

    def test_handlers_not_assignable_as_attrs(self):
        rejected(
            "page start()\n  render\n    box.ontap := 1\n",
            "on tap do",
        )

    def test_global_initializer_must_be_constant(self):
        rejected(
            "global g : number = 1 + 2\n" + START, "constant"
        )

    def test_global_initializer_type(self):
        rejected('global g : number = "one"\n' + START)

    def test_start_page_cannot_take_parameters(self):
        rejected(
            "page start(n : number)\n  render\n    post n\n",
            "start",
        )
