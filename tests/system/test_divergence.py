"""Divergent user code at the system level.

"The execution of user code may of course diverge" (Section 4.2) — the
model accepts this (the system simply never reaches a stable state); the
implementation bounds it with fuel so the live environment can report it
instead of freezing.
"""

import pytest

from repro.core.errors import EvalError, FuelExhausted
from repro.surface.compile import compile_source
from repro.system.runtime import Runtime

SPINNER = (
    "global n : number = 0\n"
    "page start()\n  render\n    boxed\n      post \"spin\"\n"
    "      on tap do\n        spin()\n"
    "fun spin()\n  var i := 0\n  while true do\n    i := i + 1\n"
)


def runtime(fault_policy="raise", fuel=None):
    compiled = compile_source(SPINNER)
    rt = Runtime(
        compiled.code, natives=compiled.natives, fault_policy=fault_policy
    )
    if fuel is not None:
        # Shrink the budget so the test is instant.
        original = rt.system._evaluator.run_state

        def limited(store, queue, expr, fuel=fuel):
            return original(store, queue, expr, fuel=fuel)

        rt.system._evaluator.run_state = limited
    return rt.start()


class TestDivergence:
    def test_divergent_handler_exhausts_fuel(self):
        rt = runtime(fuel=20_000)
        with pytest.raises(FuelExhausted):
            rt.tap_text("spin")

    def test_fuel_exhaustion_is_a_recordable_fault(self):
        rt = runtime(fault_policy="record", fuel=20_000)
        rt.tap_text("spin")
        assert rt.faults
        assert isinstance(rt.faults[0].error, FuelExhausted)
        # The environment survives its user's infinite loop.
        assert rt.contains_text("spin")

    def test_fuel_exhausted_is_an_eval_error(self):
        assert issubclass(FuelExhausted, EvalError)
