"""Event cascades: transitions that enqueue more events (Section 4.2).

"Some of these transitions can enqueue more events onto the queue (for
example, executing a push or pop expression in user code enqueues a push
or pop event)."
"""

import pytest

from helpers import page_code, render_lam, seq, state_lam
from repro.core import ast
from repro.core.defs import Code, GlobalDef, PageDef
from repro.core.effects import RENDER, STATE
from repro.core.types import NUMBER, UNIT
from repro.system.transitions import System


def page(name, init_body=None, render_body=None, arg_type=UNIT):
    return PageDef(
        name,
        arg_type,
        ast.Lam("a", arg_type,
                init_body if init_body is not None else ast.UNIT_VALUE,
                STATE),
        ast.Lam("a", arg_type,
                render_body if render_body is not None else ast.UNIT_VALUE,
                RENDER),
    )


class TestInitCascades:
    def test_init_pushing_another_page(self):
        """start's init pushes a splash page: both land on the stack, and
        the display shows the page pushed LAST."""
        code = Code(
            [
                page(
                    "start",
                    init_body=ast.Push("splash", ast.UNIT_VALUE),
                    render_body=ast.Post(ast.Str("start")),
                ),
                page("splash", render_body=ast.Post(ast.Str("splash"))),
            ]
        )
        system = System(code)
        system.run_to_stable()
        assert [n for n, _ in system.state.stack.entries()] == [
            "start", "splash",
        ]
        leaves = [
            leaf for _p, box in system.display.walk()
            for leaf in box.leaves()
        ]
        assert leaves == [ast.Str("splash")]

    def test_init_popping_itself(self):
        """init runs pop: the page is pushed, then popped — and with the
        stack empty again, STARTUP re-boots (an init-pop loop is caught
        by the transition bound)."""
        code = Code([page("start", init_body=ast.Pop())])
        system = System(code)
        from repro.core.errors import SystemError_

        with pytest.raises(SystemError_):
            system.run_to_stable(max_transitions=50)

    def test_chained_inits(self):
        """A 3-deep push chain processes strictly FIFO."""
        code = Code(
            [
                page("start", init_body=ast.Push("a", ast.UNIT_VALUE)),
                page("a", init_body=ast.Push("b", ast.UNIT_VALUE)),
                page("b", render_body=ast.Post(ast.Str("leaf"))),
            ]
        )
        system = System(code)
        system.run_to_stable()
        assert [n for n, _ in system.state.stack.entries()] == [
            "start", "a", "b",
        ]
        rules = [t.rule for t in system.trace]
        assert rules == ["STARTUP", "PUSH", "PUSH", "PUSH", "RENDER"]


class TestHandlerCascades:
    def _tappable(self, body):
        handler = ast.Lam("u", UNIT, body, STATE)
        return page_code(
            seq(RENDER, ast.Boxed(ast.SetAttr("ontap", handler), box_id=1)),
            globals_=[GlobalDef("n", NUMBER, ast.Num(0))],
        )

    def test_handler_pushing_twice(self):
        detail = page("detail", render_body=ast.Post(ast.Str("detail")),
                      arg_type=UNIT)
        handler_body = seq(
            STATE,
            ast.Push("detail", ast.UNIT_VALUE),
            ast.Push("detail", ast.UNIT_VALUE),
        )
        handler = ast.Lam("u", UNIT, handler_body, STATE)
        code = page_code(
            seq(RENDER, ast.Boxed(ast.SetAttr("ontap", handler), box_id=1)),
            extra_defs=[detail],
        )
        system = System(code)
        system.run_to_stable()
        system.tap((0,))
        system.run_to_stable()
        assert [n for n, _ in system.state.stack.entries()] == [
            "start", "detail", "detail",
        ]

    def test_handler_mixing_writes_and_navigation(self):
        body = seq(
            STATE,
            ast.GlobalWrite("n", ast.Num(7)),
            ast.Pop(),
            ast.GlobalWrite("n", ast.Num(9)),
        )
        code = self._tappable(body)
        system = System(code)
        system.run_to_stable()
        system.tap((0,))
        system.run_to_stable()
        # Both writes landed (the pop is an *event*, processed after the
        # whole handler finishes), then the pop rebooted us to start.
        assert system.state.store.lookup("n") == ast.Num(9)
        assert system.state.stack.top()[0] == "start"

    def test_events_processed_before_render(self):
        """The display is only rebuilt once the queue drains: no flicker
        of intermediate states."""
        detail = page("detail", render_body=ast.Post(ast.Str("detail")))
        handler = ast.Lam(
            "u", UNIT, ast.Push("detail", ast.UNIT_VALUE), STATE
        )
        code = page_code(
            seq(RENDER, ast.Boxed(ast.SetAttr("ontap", handler), box_id=1)),
            extra_defs=[detail],
        )
        system = System(code)
        system.run_to_stable()
        system.tap((0,))
        renders_before = sum(
            1 for t in system.trace if t.rule == "RENDER"
        )
        system.run_to_stable()
        renders_after = sum(1 for t in system.trace if t.rule == "RENDER")
        assert renders_after - renders_before == 1
