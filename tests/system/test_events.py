"""Events q and the queue Q (Fig. 7): FIFO with the paper's orientation."""

import pytest

from repro.core import ast
from repro.core.effects import STATE
from repro.core.errors import ReproError
from repro.core.types import UNIT
from repro.system.events import EventQueue, ExecEvent, PopEvent, PushEvent

THUNK = ast.Lam("u", UNIT, ast.UNIT_VALUE, STATE)


class TestEvents:
    def test_exec_requires_value(self):
        with pytest.raises(ReproError):
            ExecEvent(ast.GlobalRead("g"))

    def test_push_requires_value_argument(self):
        with pytest.raises(ReproError):
            PushEvent("p", ast.GlobalRead("g"))

    def test_str_forms(self):
        assert str(ExecEvent(THUNK)) == "[exec v]"
        assert str(PushEvent("detail", ast.Num(1))) == "[push detail v]"
        assert str(PopEvent()) == "[pop]"


class TestQueue:
    def test_fifo_order(self):
        """Enqueue left, dequeue right: first enqueued, first handled."""
        queue = EventQueue()
        queue.enqueue(PushEvent("a", ast.UNIT_VALUE))
        queue.enqueue(PopEvent())
        assert isinstance(queue.dequeue(), PushEvent)
        assert isinstance(queue.dequeue(), PopEvent)

    def test_events_snapshot_left_to_right(self):
        queue = EventQueue()
        queue.enqueue(PopEvent())
        queue.enqueue(PushEvent("a", ast.UNIT_VALUE))
        kinds = [type(e).__name__ for e in queue.events()]
        # Newest on the left, exactly like the paper writes "[q] Q".
        assert kinds == ["PushEvent", "PopEvent"]

    def test_peek_is_next_dequeued(self):
        queue = EventQueue()
        queue.enqueue(PopEvent())
        queue.enqueue(PushEvent("a", ast.UNIT_VALUE))
        assert queue.peek() is queue.dequeue()

    def test_empty_behaviour(self):
        queue = EventQueue()
        assert queue.is_empty() and queue.peek() is None
        with pytest.raises(ReproError):
            queue.dequeue()

    def test_clear(self):
        queue = EventQueue()
        queue.enqueue(PopEvent())
        queue.clear()
        assert queue.is_empty()

    def test_copy_is_independent(self):
        queue = EventQueue()
        queue.enqueue(PopEvent())
        copy = queue.copy()
        copy.dequeue()
        assert len(queue) == 1 and len(copy) == 0

    def test_only_events_accepted(self):
        with pytest.raises(ReproError):
            EventQueue().enqueue("pop")

    def test_equality(self):
        a, b = EventQueue(), EventQueue()
        a.enqueue(PopEvent())
        b.enqueue(PopEvent())
        assert a == b
