"""Runtime faults: what happens when user code traps (division by zero…).

The paper does not formalize partial operations; a usable live system
still needs a story.  Ours: under the default ``"raise"`` policy faults
propagate (deterministic for tests); under ``"record"`` the environment
stays live — event faults are logged and the queue keeps draining, render
faults show an error screen instead of looping.
"""

import pytest

from repro.core import ast
from repro.core.errors import EvalError, ReproError, SystemError_
from repro.surface.compile import compile_source
from repro.system.runtime import Runtime

CRASHY_HANDLER = (
    "global d : number = 1\n"
    "page start()\n  render\n    boxed\n      post \"n = \" || 10 / d\n"
    "      on tap do\n        d := 0\n"
    "    boxed\n      post \"crash\"\n"
    "      on tap do\n        d := 1 / 0\n"
    "    boxed\n      post \"fix\"\n"
    "      on tap do\n        d := 2\n"
)


def runtime(fault_policy="raise"):
    compiled = compile_source(CRASHY_HANDLER)
    return Runtime(
        compiled.code, natives=compiled.natives, fault_policy=fault_policy
    ).start()


class TestRaisePolicy:
    def test_handler_fault_propagates(self):
        rt = runtime("raise")
        with pytest.raises(EvalError):
            rt.tap_text("crash")

    def test_policy_validated(self):
        compiled = compile_source(CRASHY_HANDLER)
        with pytest.raises(ReproError):
            Runtime(compiled.code, fault_policy="explode")


class TestRecordPolicy:
    def test_handler_fault_recorded_and_system_lives(self):
        rt = runtime("record")
        rt.tap_text("crash")
        assert len(rt.faults) == 1
        assert rt.faults[0].during == "EVENT"
        # Still alive and interactive:
        rt.tap_text("fix")
        assert rt.contains_text("n = 5")
        assert len(rt.faults) == 1

    def test_render_fault_shows_error_screen(self):
        rt = runtime("record")
        rt.tap_text("n = 10")  # sets d := 0 → render divides by zero
        assert any(fault.during == "RENDER" for fault in rt.faults)
        assert rt.contains_text("runtime fault while rendering:")

    def test_recovery_after_render_fault(self):
        rt = runtime("record")
        rt.tap_text("n = 10")  # breaks rendering
        # The error screen has no handlers — recovery goes through a
        # live code update (the programmer fixes the bug).
        compiled = compile_source(CRASHY_HANDLER)
        rt.update_code(compiled.code, natives=compiled.natives)
        # d is still 0 in the model, so rendering faults again — but the
        # environment is still alive and showing the error screen.
        assert rt.contains_text("runtime fault while rendering:")

    def test_fault_display_shows_the_banner_and_the_error(self):
        rt = runtime("record")
        rt.tap_text("n = 10")
        texts = rt.all_texts()
        banner = texts.index("runtime fault while rendering:")
        assert "division by zero" in texts[banner + 1]

    def test_system_stays_live_behind_the_fault_display(self):
        """The error screen replaces the display, not the model: globals
        are still readable and the event queue still drains."""
        rt = runtime("record")
        rt.tap_text("n = 10")
        assert rt.global_value("d") == ast.Num(0)
        # The error screen has no handlers, so a tap is cleanly refused —
        # and the system is still standing afterwards.
        with pytest.raises(SystemError_):
            rt.system.tap(())
        assert rt.contains_text("runtime fault while rendering:")
        assert rt.global_value("d") == ast.Num(0)

    def test_taps_work_again_after_the_code_is_fixed(self):
        rt = runtime("record")
        rt.tap_text("n = 10")
        fixed = compile_source(CRASHY_HANDLER.replace("10 / d", "10 + d"))
        rt.update_code(fixed.code, natives=fixed.natives)
        assert rt.contains_text("n = 10")      # d == 0, 10 + 0
        rt.tap_text("fix")                      # handlers live again
        assert rt.contains_text("n = 12")      # d := 2
        assert len(rt.faults) == 1             # no new faults

    def test_partial_execution_is_kept(self):
        """Faults keep the store exactly as far as evaluation got — the
        small-step semantics has no transactions."""
        source = (
            "global a : number = 0\n"
            "global b : number = 0\n"
            "page start()\n  render\n    boxed\n      post \"go\"\n"
            "      on tap do\n        a := 1\n        b := 1 / 0\n"
        )
        compiled = compile_source(source)
        rt = Runtime(
            compiled.code, natives=compiled.natives, fault_policy="record"
        ).start()
        rt.tap_text("go")
        assert rt.global_value("a") == ast.Num(1)   # executed
        assert rt.global_value("b") == ast.Num(0)   # never reached
