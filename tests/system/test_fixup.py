"""The Fig. 12 fix-up relations: C' : S ▷ S' and C' : P ▷ P'."""

import pytest

from helpers import page_code, render_lam, state_lam
from repro.core import ast
from repro.core.defs import Code, GlobalDef, PageDef
from repro.core.effects import RENDER, STATE
from repro.core.types import NUMBER, STRING, UNIT, list_of, tuple_of
from repro.system.fixup import fixup, fixup_stack, fixup_store
from repro.system.state import PageStack, Store


def code_with(globals_=(), pages=()):
    defs = list(globals_)
    defs.append(
        PageDef(
            "start", UNIT, state_lam(ast.UNIT_VALUE),
            render_lam(ast.UNIT_VALUE),
        )
    )
    defs.extend(pages)
    return Code(defs)


def number_page(name):
    return PageDef(
        name,
        NUMBER,
        ast.Lam("a", NUMBER, ast.UNIT_VALUE, STATE),
        ast.Lam("a", NUMBER, ast.UNIT_VALUE, RENDER),
    )


class TestStoreFixup:
    def test_s_okay_keeps_well_typed_entries(self):
        new_code = code_with([GlobalDef("g", NUMBER, ast.Num(0))])
        store = Store()
        store.assign("g", ast.Num(42))
        fixed, report = fixup_store(new_code, store)
        assert fixed.lookup("g") == ast.Num(42)
        assert report.clean

    def test_s_skip_deleted_global(self):
        new_code = code_with()  # g no longer declared
        store = Store()
        store.assign("g", ast.Num(42))
        fixed, report = fixup_store(new_code, store)
        assert "g" not in fixed
        assert report.dropped_globals == ["g"]

    def test_s_skip_type_changed(self):
        """The paper's radical rule: 'it just deletes whatever does not
        type' — so the global reverts to its new initial value."""
        new_code = code_with([GlobalDef("g", STRING, ast.Str("fresh"))])
        store = Store()
        store.assign("g", ast.Num(42))
        fixed, _report = fixup_store(new_code, store)
        assert "g" not in fixed  # EP-GLOBAL-2 now yields "fresh"

    def test_subtype_shaped_values_survive_structural_change(self):
        new_type = tuple_of(NUMBER, STRING)
        new_code = code_with(
            [GlobalDef("g", new_type, ast.Tuple((ast.Num(0), ast.Str(""))))]
        )
        store = Store()
        store.assign("g", ast.Tuple((ast.Num(1), ast.Str("a"))))
        fixed, _ = fixup_store(new_code, store)
        assert "g" in fixed

    def test_list_entries(self):
        new_code = code_with(
            [GlobalDef("g", list_of(NUMBER), ast.ListLit((), NUMBER))]
        )
        store = Store()
        store.assign("g", ast.ListLit((ast.Num(1),), NUMBER))
        fixed, _ = fixup_store(new_code, store)
        assert "g" in fixed
        store2 = Store()
        store2.assign("g", ast.ListLit((ast.Str("x"),), STRING))
        fixed2, _ = fixup_store(new_code, store2)
        assert "g" not in fixed2

    def test_order_preserved(self):
        new_code = code_with(
            [
                GlobalDef("a", NUMBER, ast.Num(0)),
                GlobalDef("b", NUMBER, ast.Num(0)),
                GlobalDef("c", NUMBER, ast.Num(0)),
            ]
        )
        store = Store()
        for name in ("c", "a", "b"):
            store.assign(name, ast.Num(1))
        fixed, _ = fixup_store(new_code, store)
        assert fixed.domain() == ("c", "a", "b")

    def test_input_store_untouched(self):
        new_code = code_with()
        store = Store()
        store.assign("g", ast.Num(1))
        fixup_store(new_code, store)
        assert "g" in store


class TestStackFixup:
    def test_p_okay(self):
        new_code = code_with(pages=[number_page("detail")])
        stack = PageStack()
        stack.push("start", ast.UNIT_VALUE)
        stack.push("detail", ast.Num(3))
        fixed, report = fixup_stack(new_code, stack)
        assert [n for n, _ in fixed.entries()] == ["start", "detail"]
        assert report.clean

    def test_p_skip_deleted_page(self):
        new_code = code_with()  # detail page gone
        stack = PageStack()
        stack.push("start", ast.UNIT_VALUE)
        stack.push("detail", ast.Num(3))
        fixed, report = fixup_stack(new_code, stack)
        assert [n for n, _ in fixed.entries()] == ["start"]
        assert report.dropped_pages == ["detail"]

    def test_p_skip_argument_type_changed(self):
        string_detail = PageDef(
            "detail",
            STRING,
            ast.Lam("a", STRING, ast.UNIT_VALUE,
                    STATE),
            ast.Lam("a", STRING, ast.UNIT_VALUE,
                    RENDER),
        )
        new_code = code_with(pages=[string_detail])
        stack = PageStack()
        stack.push("detail", ast.Num(3))  # number arg, now takes string
        fixed, _ = fixup_stack(new_code, stack)
        assert fixed.is_empty()

    def test_middle_of_stack_removable(self):
        new_code = code_with()
        stack = PageStack()
        stack.push("start", ast.UNIT_VALUE)
        stack.push("ghost", ast.Num(1))
        stack.push("start", ast.UNIT_VALUE)
        fixed, _ = fixup_stack(new_code, stack)
        assert [n for n, _ in fixed.entries()] == ["start", "start"]


class TestCombined:
    def test_fixup_returns_both_plus_report(self):
        new_code = code_with([GlobalDef("keep", NUMBER, ast.Num(0))])
        store = Store()
        store.assign("keep", ast.Num(1))
        store.assign("drop", ast.Num(2))
        stack = PageStack()
        stack.push("start", ast.UNIT_VALUE)
        stack.push("gone", ast.Num(1))
        new_store, new_stack, report = fixup(new_code, store, stack)
        assert "keep" in new_store and "drop" not in new_store
        assert len(new_stack) == 1
        assert report.dropped_globals == ["drop"]
        assert report.dropped_pages == ["gone"]
        assert not report.clean
