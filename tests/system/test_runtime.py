"""The Runtime facade: user actions, queries, screenshots."""

import pytest

from helpers import counter_core_code
from repro.core import ast
from repro.core.errors import ReproError
from repro.system.runtime import Runtime


class TestLifecycle:
    def test_start_is_idempotent(self, counter_runtime):
        trace_length = len(counter_runtime.trace)
        counter_runtime.start()
        assert len(counter_runtime.trace) == trace_length

    def test_display_before_start_raises(self, counter_code):
        runtime = Runtime(counter_code)
        with pytest.raises(ReproError):
            runtime.display


class TestQueries:
    def test_find_text(self, counter_runtime):
        assert counter_runtime.find_text("count: 0") == (0,)
        assert counter_runtime.find_text("missing") is None

    def test_require_text_raises_with_dump(self, counter_runtime):
        with pytest.raises(ReproError) as caught:
            counter_runtime.require_text("missing")
        assert "box#" in str(caught.value)  # includes the display dump

    def test_all_texts(self, counter_runtime):
        assert counter_runtime.all_texts() == ["count: 0", "reset"]

    def test_contains_text(self, counter_runtime):
        assert counter_runtime.contains_text("reset")
        assert not counter_runtime.contains_text("nope")

    def test_find_boxes(self, counter_runtime):
        tappable = counter_runtime.find_boxes(
            lambda box: box.has_attr("ontap")
        )
        assert [path for path, _ in tappable] == [(0,), (1,)]

    def test_page_and_stack(self, counter_runtime):
        assert counter_runtime.page_name() == "start"
        assert counter_runtime.stack_pages() == ("start",)


class TestGlobalValue:
    def test_reads_store_after_assignment(self, counter_runtime):
        counter_runtime.tap_text("count: 0")
        assert counter_runtime.global_value("count") == ast.Num(1)

    def test_falls_back_to_initial_value(self, counter_runtime):
        """Mirrors EP-GLOBAL-2: unassigned globals read their initializer."""
        assert counter_runtime.global_value("count") == ast.Num(0)

    def test_unknown_global(self, counter_runtime):
        with pytest.raises(ReproError):
            counter_runtime.global_value("ghost")


class TestActions:
    def test_tap_text_sequence(self, counter_runtime):
        counter_runtime.tap_text("count: 0")
        counter_runtime.tap_text("count: 1")
        counter_runtime.tap_text("reset")
        assert counter_runtime.all_texts()[0] == "count: 0"

    def test_actions_chain(self, counter_runtime):
        result = counter_runtime.tap_text("count: 0").back()
        assert result is counter_runtime

    def test_update_code_returns_report(self, counter_runtime):
        report = counter_runtime.update_code(counter_core_code("n: "))
        assert report.clean
        assert counter_runtime.all_texts()[0] == "n: 0"

    def test_screenshot_contains_text(self, counter_runtime):
        shot = counter_runtime.screenshot(width=24)
        assert "count: 0" in shot and "reset" in shot
