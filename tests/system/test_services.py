"""Host services and the virtual clock."""

import pytest

from repro.core.errors import ReproError
from repro.system.services import Services, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ReproError):
            VirtualClock().advance(-1)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(3)
        clock.reset()
        assert clock.now == 0.0


class TestServices:
    def test_provide_and_get(self):
        services = Services()
        web = object()
        assert services.provide("web", web) is web
        assert services.get("web") is web
        assert services.has("web")
        assert services.names() == ("web",)

    def test_double_provide_rejected(self):
        services = Services()
        services.provide("web", object())
        with pytest.raises(ReproError):
            services.provide("web", object())

    def test_missing_service_error_names_it(self):
        with pytest.raises(ReproError) as caught:
            Services().get("web")
        assert "web" in str(caught.value)

    def test_default_clock_attached(self):
        assert isinstance(Services().clock, VirtualClock)

    def test_custom_clock(self):
        clock = VirtualClock()
        clock.advance(5)
        assert Services(clock=clock).clock.now == 5.0


class TestThreadSafety:
    """The repro.serve session host drives services from worker threads;
    clock advances and substrate registration must not lose updates."""

    def test_clock_hammered_from_worker_threads(self):
        import threading

        clock = VirtualClock()
        threads_n, advances, step = 8, 2000, 0.25
        barrier = threading.Barrier(threads_n)

        def hammer():
            barrier.wait()
            for _ in range(advances):
                clock.advance(step)

        threads = [
            threading.Thread(target=hammer) for _ in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Unsynchronized ``self._now += seconds`` loses increments under
        # contention; the lock makes the total exact (0.25 is a binary
        # fraction, so float addition here is associative and lossless).
        assert clock.now == threads_n * advances * step

    def test_concurrent_provide_admits_exactly_one_winner(self):
        import threading

        services = Services()
        outcomes = []
        barrier = threading.Barrier(8)

        def race(n):
            barrier.wait()
            try:
                services.provide("web", n)
                outcomes.append(("won", n))
            except ReproError:
                outcomes.append(("lost", n))

        threads = [
            threading.Thread(target=race, args=(n,)) for n in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        winners = [o for o in outcomes if o[0] == "won"]
        assert len(winners) == 1
        assert services.get("web") == winners[0][1]

    def test_clock_reads_race_advances(self):
        import threading

        clock = VirtualClock()
        seen = []

        def reader():
            for _ in range(2000):
                seen.append(clock.now)

        def writer():
            for _ in range(2000):
                clock.advance(0.5)

        threads = [
            threading.Thread(target=reader),
            threading.Thread(target=writer),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert clock.now == 1000.0
        assert seen == sorted(seen)  # time is monotonic under races
