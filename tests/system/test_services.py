"""Host services and the virtual clock."""

import pytest

from repro.core.errors import ReproError
from repro.system.services import Services, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ReproError):
            VirtualClock().advance(-1)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(3)
        clock.reset()
        assert clock.now == 0.0


class TestServices:
    def test_provide_and_get(self):
        services = Services()
        web = object()
        assert services.provide("web", web) is web
        assert services.get("web") is web
        assert services.has("web")
        assert services.names() == ("web",)

    def test_double_provide_rejected(self):
        services = Services()
        services.provide("web", object())
        with pytest.raises(ReproError):
            services.provide("web", object())

    def test_missing_service_error_names_it(self):
        with pytest.raises(ReproError) as caught:
            Services().get("web")
        assert "web" in str(caught.value)

    def test_default_clock_attached(self):
        assert isinstance(Services().clock, VirtualClock)

    def test_custom_clock(self):
        clock = VirtualClock()
        clock.advance(5)
        assert Services(clock=clock).clock.now == 5.0
