"""System-state components: Store, PageStack, SystemState (Fig. 7)."""

import pytest

from helpers import counter_core_code
from repro.boxes.tree import STALE, make_root
from repro.core import ast
from repro.core.errors import ReproError
from repro.system.state import PageStack, Store, SystemState


class TestStore:
    def test_lookup_missing_is_none(self):
        """g ∉ dom S — EP-GLOBAL-2's premise."""
        assert Store().lookup("g") is None

    def test_assign_then_lookup(self):
        store = Store()
        store.assign("g", ast.Num(1))
        assert store.lookup("g") == ast.Num(1)

    def test_rightmost_wins(self):
        store = Store()
        store.assign("g", ast.Num(1))
        store.assign("g", ast.Num(2))
        assert store.lookup("g") == ast.Num(2)
        assert len(store) == 1

    def test_values_only(self):
        with pytest.raises(ReproError):
            Store().assign("g", ast.GlobalRead("h"))

    def test_domain_in_first_assignment_order(self):
        store = Store()
        store.assign("b", ast.Num(1))
        store.assign("a", ast.Num(2))
        store.assign("b", ast.Num(3))
        assert store.domain() == ("b", "a")

    def test_delete(self):
        store = Store()
        store.assign("g", ast.Num(1))
        store.delete("g")
        assert "g" not in store
        store.delete("g")  # idempotent

    def test_copy_independent(self):
        store = Store()
        store.assign("g", ast.Num(1))
        copy = store.copy()
        copy.assign("g", ast.Num(2))
        assert store.lookup("g") == ast.Num(1)


class TestPageStack:
    def test_push_pop_top(self):
        stack = PageStack()
        stack.push("start", ast.UNIT_VALUE)
        stack.push("detail", ast.Num(1))
        assert stack.top() == ("detail", ast.Num(1))
        stack.pop()
        assert stack.top() == ("start", ast.UNIT_VALUE)

    def test_pop_on_empty_is_noop(self):
        """Rule POP: 'or does nothing (if the page stack is already
        empty)'."""
        stack = PageStack()
        stack.pop()
        assert stack.is_empty()

    def test_arguments_must_be_values(self):
        with pytest.raises(ReproError):
            PageStack().push("p", ast.GlobalRead("g"))

    def test_entries_bottom_to_top(self):
        stack = PageStack()
        stack.push("a", ast.UNIT_VALUE)
        stack.push("b", ast.UNIT_VALUE)
        assert [name for name, _ in stack.entries()] == ["a", "b"]

    def test_replace(self):
        stack = PageStack()
        stack.push("a", ast.UNIT_VALUE)
        stack.replace([("b", ast.UNIT_VALUE)])
        assert stack.top()[0] == "b"


class TestSystemState:
    def test_initial_state_shape(self):
        """(C, ⊥, ε, ε, ε) — and it is unstable (empty stack)."""
        state = SystemState.initial(counter_core_code())
        assert state.display is STALE
        assert len(state.store) == 0
        assert state.stack.is_empty()
        assert state.queue.is_empty()
        assert not state.is_stable()

    def test_stability_definition(self):
        state = SystemState.initial(counter_core_code())
        state.stack.push("start", ast.UNIT_VALUE)
        assert state.is_stable()
        from repro.system.events import PopEvent

        state.queue.enqueue(PopEvent())
        assert not state.is_stable()

    def test_display_validity(self):
        state = SystemState.initial(counter_core_code())
        assert not state.display_is_valid()
        state.display = make_root().freeze()
        assert state.display_is_valid()
        state.invalidate_display()
        assert state.display is STALE

    def test_snapshot_isolation(self):
        state = SystemState.initial(counter_core_code())
        state.store.assign("count", ast.Num(1))
        snap = state.snapshot()
        state.store.assign("count", ast.Num(2))
        assert snap.store.lookup("count") == ast.Num(1)
