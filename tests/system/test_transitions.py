"""The system transition relation →g, rule by rule (Fig. 9)."""

import pytest

from helpers import counter_core_code, page_code, render_lam, seq, state_lam
from repro.boxes.tree import STALE
from repro.core import ast
from repro.core.defs import Code, GlobalDef, PageDef
from repro.core.effects import RENDER, STATE
from repro.core.errors import SystemError_, UpdateRejected
from repro.core.types import NUMBER, UNIT
from repro.system.events import ExecEvent, PopEvent, PushEvent
from repro.system.transitions import System


def two_page_code():
    """start shows a tappable label that pushes detail(n)."""
    push_handler = ast.Lam(
        "u", UNIT, ast.Push("detail", ast.Num(7)), STATE
    )
    start_render = seq(
        RENDER,
        ast.Boxed(
            seq(
                RENDER,
                ast.Post(ast.Str("go")),
                ast.SetAttr("ontap", push_handler),
            ),
            box_id=1,
        ),
    )
    detail = PageDef(
        "detail",
        NUMBER,
        ast.Lam("a", NUMBER, ast.UNIT_VALUE, STATE),
        ast.Lam("a", NUMBER, ast.Post(ast.Var("a")), RENDER),
    )
    return page_code(start_render, extra_defs=[detail])


class TestStartup:
    def test_startup_enqueues_push_start(self):
        system = System(counter_core_code())
        system.startup()
        assert system.state.queue.events() == (
            PushEvent("start", ast.UNIT_VALUE),
        )
        assert system.display is STALE

    def test_startup_requires_empty_stack_and_queue(self):
        system = System(counter_core_code())
        system.run_to_stable()
        with pytest.raises(SystemError_):
            system.startup()

    def test_initial_state_is_unstable_startup_fires(self):
        system = System(counter_core_code())
        assert system.enabled_internal_transition() == "STARTUP"


class TestEventHandling:
    def test_push_runs_init_and_pushes(self):
        init_body = ast.GlobalWrite("count", ast.Num(5))
        code = page_code(
            ast.UNIT_VALUE,
            init_body=init_body,
            globals_=[GlobalDef("count", NUMBER, ast.Num(0))],
        )
        system = System(code)
        system.startup()
        system.handle_next_event()
        assert system.state.stack.top() == ("start", ast.UNIT_VALUE)
        assert system.state.store.lookup("count") == ast.Num(5)

    def test_thunk_executes_in_standard_mode(self):
        system = System(counter_core_code())
        system.run_to_stable()
        system.tap((0,))
        event = system.state.queue.peek()
        assert isinstance(event, ExecEvent)
        system.handle_next_event()
        assert system.state.store.lookup("count") == ast.Num(1)

    def test_pop_removes_top_page(self):
        system = System(two_page_code())
        system.run_to_stable()
        system.tap((0,))  # pushes detail
        system.run_to_stable()
        assert system.state.stack.top()[0] == "detail"
        system.back()
        system.run_to_stable()
        assert system.state.stack.top()[0] == "start"

    def test_pop_on_last_page_triggers_restart(self):
        """Empty stack + empty queue re-enables STARTUP: the app reboots."""
        system = System(counter_core_code())
        system.run_to_stable()
        system.back()
        system.run_to_stable()
        assert system.state.stack.top()[0] == "start"

    def test_handle_event_on_empty_queue_rejected(self):
        system = System(counter_core_code())
        system.run_to_stable()
        with pytest.raises(SystemError_):
            system.handle_next_event()


class TestTapAndEdit:
    def test_tap_requires_valid_display(self):
        """'It is not possible to activate tap handlers on a stale
        display' — the premise of rule TAP."""
        system = System(counter_core_code())
        with pytest.raises(SystemError_):
            system.tap(())

    def test_tap_wraps_handler_in_exec(self):
        system = System(counter_core_code())
        system.run_to_stable()
        system.tap((0,))
        assert isinstance(system.state.queue.peek(), ExecEvent)
        assert system.display is STALE

    def test_tap_bubbles_to_nearest_handler(self):
        """A tap on nested content fires the nearest *enclosing* handler."""
        code = page_code(
            seq(
                RENDER,
                ast.Boxed(
                    seq(
                        RENDER,
                        ast.SetAttr(
                            "ontap",
                            ast.Lam("u", UNIT, ast.Pop(), STATE),
                        ),
                        ast.Boxed(ast.Post(ast.Str("inner")), box_id=2),
                    ),
                    box_id=1,
                ),
            )
        )
        system = System(code)
        system.run_to_stable()
        handler_path = system.tap((0, 0))  # inner box has no handler
        assert handler_path == (0,)

    def test_tap_without_any_handler(self):
        code = page_code(seq(RENDER, ast.Post(ast.Str("static"))))
        system = System(code)
        system.run_to_stable()
        with pytest.raises(SystemError_):
            system.tap(())

    def test_edit_requires_onedit_handler(self):
        system = System(counter_core_code())
        system.run_to_stable()
        with pytest.raises(SystemError_):
            system.edit((0,), "text")

    def test_back_always_enabled(self):
        system = System(counter_core_code())
        system.back()  # even before startup
        assert isinstance(system.state.queue.peek(), PopEvent)


class TestRender:
    def test_render_premises(self):
        system = System(counter_core_code())
        with pytest.raises(SystemError_):
            system.render()  # empty stack
        system.startup()
        with pytest.raises(SystemError_):
            system.render()  # queue non-empty
        system.handle_next_event()
        tree = system.render()
        assert system.display is tree

    def test_render_on_valid_display_rejected(self):
        system = System(counter_core_code())
        system.run_to_stable()
        with pytest.raises(SystemError_):
            system.render()

    def test_render_uses_top_page(self):
        system = System(two_page_code())
        system.run_to_stable()
        system.tap((0,))
        system.run_to_stable()
        # detail's render posts its argument (7).
        assert system.display.children() == [] or True
        leaves = [
            leaf for _p, box in system.display.walk()
            for leaf in box.leaves()
        ]
        assert ast.Num(7) in leaves

    def test_every_transition_invalidates_except_render(self):
        system = System(counter_core_code())
        system.run_to_stable()
        for action in (lambda: system.tap((0,)), system.back):
            action()
            assert system.display is STALE
            system.run_to_stable()
            assert system.display is not STALE


class TestScheduler:
    def test_deterministic_choice(self):
        system = System(counter_core_code())
        fired = []
        while True:
            choice = system.enabled_internal_transition()
            if choice is None:
                break
            system.step()
            fired.append(choice)
        assert fired == ["STARTUP", "EVENT", "RENDER"]

    def test_stable_state_steps_to_none(self):
        system = System(counter_core_code())
        system.run_to_stable()
        assert system.step() is None

    def test_runaway_push_detected(self):
        """'This can lead to an infinite loop of pushing new pages.'"""
        init = state_lam(ast.Push("start", ast.UNIT_VALUE))
        code = Code(
            [PageDef("start", UNIT, init, render_lam(ast.UNIT_VALUE))]
        )
        system = System(code)
        with pytest.raises(SystemError_):
            system.run_to_stable(max_transitions=100)


class TestTrace:
    def test_trace_records_rules(self):
        system = System(counter_core_code())
        system.run_to_stable()
        assert [t.rule for t in system.trace] == [
            "STARTUP", "PUSH", "RENDER",
        ]
