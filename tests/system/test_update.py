"""The UPDATE transition (Fig. 9) — the heart of live programming."""

import pytest

from helpers import counter_core_code, page_code, render_lam, seq, state_lam
from repro.boxes.tree import STALE
from repro.core import ast
from repro.core.defs import Code, GlobalDef, PageDef
from repro.core.effects import RENDER, STATE
from repro.core.errors import SystemError_, UpdateRejected
from repro.core.types import NUMBER, STRING, UNIT
from repro.metatheory.wellformed import no_stale_code
from repro.system.transitions import System


def labelled_counter(label):
    """counter_core_code but with a configurable label (a 'code edit')."""
    from helpers import counter_core_code as make

    return make(label)


class TestPremises:
    def test_update_requires_empty_queue(self):
        system = System(counter_core_code())
        system.run_to_stable()
        system.tap((0,))  # enqueues, but we don't run it
        with pytest.raises(SystemError_):
            system.update(counter_core_code())

    def test_ill_typed_code_rejected(self):
        """C' ⊢ C' is a premise: broken programs never replace running
        ones, so the live view survives mid-edit states."""
        system = System(counter_core_code())
        system.run_to_stable()
        bad = Code([])  # no start page
        with pytest.raises(UpdateRejected) as caught:
            system.update(bad)
        assert caught.value.problems
        # The old program is untouched and still runs.
        system.tap((0,))
        system.run_to_stable()
        assert system.state.store.lookup("count") == ast.Num(1)

    def test_arbitrary_code_changes_allowed(self):
        """'There is no requirement that C' is related in any way to C.'"""
        system = System(counter_core_code())
        system.run_to_stable()
        unrelated = page_code(
            seq(RENDER, ast.Post(ast.Str("totally different"))),
            globals_=[GlobalDef("other", STRING, ast.Str(""))],
        )
        system.update(unrelated)
        system.run_to_stable()
        leaves = [
            leaf for _p, box in system.display.walk()
            for leaf in box.leaves()
        ]
        assert ast.Str("totally different") in leaves


class TestSemantics:
    def test_model_survives_code_change(self):
        """THE paper behaviour: new code renders against old state."""
        system = System(counter_core_code("count: "))
        system.run_to_stable()
        system.tap((0,))
        system.run_to_stable()  # TAP needs a valid display each time
        system.tap((0,))
        system.run_to_stable()
        system.update(labelled_counter("n = "))
        system.run_to_stable()
        leaves = [
            leaf for _p, box in system.display.walk()
            for leaf in box.leaves()
        ]
        assert ast.Str("n = 2") in leaves

    def test_display_invalidated_and_queue_empty(self):
        system = System(counter_core_code())
        system.run_to_stable()
        system.update(counter_core_code())
        assert system.display is STALE
        assert system.state.queue.is_empty()

    def test_fixup_report_surfaces_drops(self):
        system = System(counter_core_code())
        system.run_to_stable()
        system.tap((0,))
        system.run_to_stable()
        # New code declares count as a string: the entry must be dropped.
        new_code = page_code(
            ast.UNIT_VALUE,
            globals_=[GlobalDef("count", STRING, ast.Str("fresh"))],
        )
        report = system.update(new_code)
        assert report.dropped_globals == ["count"]
        assert "count" not in system.state.store

    def test_dropped_global_reverts_to_new_initial_value(self):
        system = System(counter_core_code())
        system.run_to_stable()
        system.tap((0,))
        system.run_to_stable()
        new_code = page_code(
            seq(RENDER, ast.Post(ast.GlobalRead("count"))),
            globals_=[GlobalDef("count", STRING, ast.Str("fresh"))],
        )
        system.update(new_code)
        system.run_to_stable()
        leaves = [
            leaf for _p, box in system.display.walk()
            for leaf in box.leaves()
        ]
        assert ast.Str("fresh") in leaves

    def test_page_stack_fixed_up(self):
        detail = PageDef(
            "detail",
            NUMBER,
            ast.Lam("a", NUMBER, ast.UNIT_VALUE, STATE),
            ast.Lam("a", NUMBER, ast.UNIT_VALUE, RENDER),
        )
        push = ast.Lam("u", UNIT, ast.Push("detail", ast.Num(1)), STATE)
        code = page_code(
            seq(
                RENDER,
                ast.Boxed(ast.SetAttr("ontap", push), box_id=1),
            ),
            extra_defs=[detail],
        )
        system = System(code)
        system.run_to_stable()
        system.tap((0,))
        system.run_to_stable()
        assert system.state.stack.top()[0] == "detail"
        # Remove the detail page: the stack entry must vanish and the
        # start page becomes current again.
        report = system.update(page_code(ast.UNIT_VALUE))
        assert report.dropped_pages == ["detail"]
        system.run_to_stable()
        assert system.state.stack.top()[0] == "start"

    def test_no_stale_code_after_update(self):
        """'After a code update, the system contains no stale code.'"""
        system = System(counter_core_code())
        system.run_to_stable()
        system.tap((0,))
        system.run_to_stable()
        system.update(labelled_counter("x"))
        assert no_stale_code(system)
        assert system.display is STALE

    def test_init_not_rerun_on_update(self):
        """Init bodies run once per page push, never on updates —
        'initialization ... is not automatically re-executed'."""
        code = page_code(
            ast.UNIT_VALUE,
            init_body=ast.GlobalWrite(
                "boots",
                ast.Prim("add", (ast.GlobalRead("boots"), ast.Num(1))),
            ),
            globals_=[GlobalDef("boots", NUMBER, ast.Num(0))],
        )
        system = System(code)
        system.run_to_stable()
        assert system.state.store.lookup("boots") == ast.Num(1)
        system.update(code)
        system.run_to_stable()
        assert system.state.store.lookup("boots") == ast.Num(1)

    def test_update_can_be_disabled_for_experiments(self):
        system = System(counter_core_code(), check_updates=False)
        system.run_to_stable()
        system.update(Code([PageDef(
            "start", UNIT,
            state_lam(ast.UNIT_VALUE), render_lam(ast.UNIT_VALUE),
        )]))
        system.run_to_stable()  # blank but alive
