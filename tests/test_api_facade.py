"""The consolidated public facade (repro.api) and its deprecation shims."""

import inspect
import warnings

import pytest

import repro
import repro.api
from repro.apps.counter import SOURCE as COUNTER

FACADE_NAMES = (
    "Journal", "LiveSession", "Runtime", "SessionHost", "Tracer"
)

DEEP_HOMES = {
    "LiveSession": "repro.live",
    "Runtime": "repro.system",
    "SessionHost": "repro.serve",
    "Journal": "repro.resilience",
    "Tracer": "repro.obs",
}

DEFINING_MODULES = {
    "LiveSession": "repro.live.session",
    "Runtime": "repro.system.runtime",
    "SessionHost": "repro.serve.host",
    "Journal": "repro.resilience.journal",
    "Tracer": "repro.obs.trace",
}


class TestFacadeSurface:
    def test_all_is_explicit_and_sorted(self):
        assert repro.api.__all__ == sorted(repro.api.__all__)
        for name in FACADE_NAMES + ("EditResult",):
            assert name in repro.api.__all__
            assert hasattr(repro.api, name)

    def test_top_level_package_reexports_the_facade(self):
        for name in FACADE_NAMES:
            assert getattr(repro, name) is getattr(repro.api, name)

    def test_facade_classes_are_the_real_types(self):
        # isinstance/except clauses written against the deep classes
        # keep working: the facade subclasses them.
        import importlib

        for name in FACADE_NAMES:
            deep = getattr(
                importlib.import_module(DEFINING_MODULES[name]), name
            )
            assert issubclass(getattr(repro.api, name), deep)

    def test_constructors_are_keyword_only(self):
        for name in FACADE_NAMES:
            signature = inspect.signature(getattr(repro.api, name))
            kinds = {
                parameter.kind
                for parameter in signature.parameters.values()
            }
            assert inspect.Parameter.VAR_KEYWORD not in kinds
            positional = [
                parameter
                for parameter in signature.parameters.values()
                if parameter.kind
                is inspect.Parameter.POSITIONAL_OR_KEYWORD
            ]
            # At most the single required subject (source / code / dir).
            assert len(positional) <= 1

    def test_options_cannot_be_passed_positionally(self):
        with pytest.raises(TypeError):
            repro.api.LiveSession(COUNTER, None)
        with pytest.raises(TypeError):
            repro.api.Tracer([])
        with pytest.raises(TypeError):
            repro.api.SessionHost(16)

    def test_facade_session_works(self):
        session = repro.api.LiveSession(COUNTER, memo_render=True)
        assert "count" in session.screenshot()


class TestDeprecationShims:
    @pytest.mark.parametrize("name", FACADE_NAMES)
    def test_old_deep_import_warns_and_returns_original(self, name):
        import importlib

        package = importlib.import_module(DEEP_HOMES[name])
        with pytest.warns(DeprecationWarning, match="repro.api"):
            shimmed = getattr(package, name)
        defining = importlib.import_module(DEFINING_MODULES[name])
        # The shim hands back the *defining* class — original
        # positional signatures keep working for old call sites.
        assert shimmed is getattr(defining, name)

    def test_defining_module_import_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.live.session import LiveSession  # noqa: F401
            from repro.obs.trace import Tracer  # noqa: F401

    def test_facade_import_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.api import LiveSession, Tracer  # noqa: F401
            assert repro.LiveSession is LiveSession

    def test_unknown_attribute_still_raises(self):
        import repro.live

        with pytest.raises(AttributeError):
            repro.live.NoSuchThing
