"""The command-line interface."""

import io

import pytest

from repro.apps.counter import SOURCE as COUNTER
from repro.cli import main


@pytest.fixture
def counter_file(tmp_path):
    path = tmp_path / "counter.live"
    path.write_text(COUNTER)
    return str(path)


def run_cli(*argv):
    out = io.StringIO()
    status = main(list(argv), out=out)
    return status, out.getvalue()


class TestCheck:
    def test_ok(self, counter_file):
        status, output = run_cli("check", counter_file)
        assert status == 0 and "ok" in output

    def test_type_error_listed(self, tmp_path):
        path = tmp_path / "bad.live"
        path.write_text(
            "global g : number = 0\n"
            "page start()\n  render\n    g := 1\n"
        )
        status, output = run_cli("check", str(path))
        assert status == 1
        assert "render code can only read" in output

    def test_syntax_error(self, tmp_path):
        path = tmp_path / "bad.live"
        path.write_text("page start(\n")
        status, output = run_cli("check", str(path))
        assert status == 1 and "syntax error" in output

    def test_missing_file(self):
        status, output = run_cli("check", "/no/such/file.live")
        assert status == 1 and "cannot read" in output


class TestRun:
    def test_screenshot(self, counter_file):
        status, output = run_cli("run", counter_file, "--width", "24")
        assert status == 0
        assert "count: 0" in output

    def test_taps_drive_the_app(self, counter_file):
        status, output = run_cli(
            "run", counter_file,
            "--tap", "count: 0", "--tap", "count: 1",
        )
        assert status == 0 and "count: 2" in output

    def test_trace(self, counter_file):
        _status, output = run_cli("run", counter_file, "--trace")
        assert "STARTUP" in output and "RENDER" in output

    def test_edit_action(self, tmp_path):
        path = tmp_path / "editable.live"
        path.write_text(
            "global apr : number = 4.5\n"
            "page start()\n  render\n    boxed\n      editable apr\n"
        )
        status, output = run_cli(
            "run", str(path), "--edit", "4.5=6.25"
        )
        assert status == 0 and "6.25" in output


class TestTrace:
    def test_trace_prints_span_tree_and_metric_table(self, counter_file):
        status, output = run_cli("trace", counter_file)
        assert status == 0
        assert "trace of" in output
        # The span tree mirrors the transitions that actually fired.
        for span_name in ("startup", "event", "render"):
            assert span_name in output
        # The metric table always shows the full catalog.
        for metric in ("boxes_rendered", "memo_hits", "memo_misses"):
            assert metric in output

    def test_trace_auto_interacts_when_no_actions_given(self, counter_file):
        _status, output = run_cli("trace", counter_file)
        assert "tap" in output          # the auto-driver tapped the app

    def test_trace_with_explicit_taps(self, counter_file):
        status, output = run_cli(
            "trace", counter_file, "--tap", "count: 0", "--tap", "count: 1"
        )
        assert status == 0 and "tap" in output

    def test_trace_accepts_python_example_files(self):
        from pathlib import Path

        quickstart = Path(__file__).parent.parent / "examples/quickstart.py"
        status, output = run_cli("trace", str(quickstart))
        assert status == 0
        assert "boxes_rendered" in output

    def test_trace_jsonl_is_valid(self, counter_file, tmp_path):
        import json

        target = str(tmp_path / "trace.jsonl")
        status, output = run_cli(
            "trace", counter_file, "--trace-jsonl", target
        )
        assert status == 0 and "wrote trace" in output
        with open(target) as handle:
            lines = handle.read().splitlines()
        assert lines
        objects = [json.loads(line) for line in lines]
        assert {obj["type"] for obj in objects} == {"span", "metrics"}
        metrics = [o for o in objects if o["type"] == "metrics"][0]
        assert metrics["metrics"]["boxes_rendered"] > 0

    def test_run_trace_jsonl(self, counter_file, tmp_path):
        import json

        target = str(tmp_path / "run.jsonl")
        status, _output = run_cli(
            "run", counter_file, "--tap", "count: 0",
            "--trace-jsonl", target,
        )
        assert status == 0
        with open(target) as handle:
            for line in handle.read().splitlines():
                json.loads(line)


class TestCompileAndProbe:
    def test_compile_prints_core(self, counter_file):
        status, output = run_cli("compile", counter_file)
        assert status == 0
        assert "global count : number = 0" in output
        assert "page start" in output

    def test_compile_mentions_generated_loops(self, tmp_path):
        path = tmp_path / "loops.live"
        path.write_text(
            "page start()\n  render\n    for i = 1 to 3 do\n      post i\n"
        )
        _status, output = run_cli("compile", str(path))
        assert "generated loop functions" in output

    def test_probe_expression(self, counter_file):
        status, output = run_cli(
            "probe", counter_file, "count + 41"
        )
        assert status == 0 and "41.0" in output

    def test_probe_type_error(self, counter_file):
        status, output = run_cli("probe", counter_file, '1 + "x"')
        assert status == 1 and "error" in output


class TestHtml:
    def test_html_to_stdout(self, counter_file):
        status, output = run_cli("html", counter_file)
        assert status == 0
        assert output.startswith("<!DOCTYPE html>")

    def test_html_to_file(self, counter_file, tmp_path):
        target = tmp_path / "page.html"
        status, output = run_cli(
            "html", counter_file, "-o", str(target)
        )
        assert status == 0
        assert target.read_text().startswith("<!DOCTYPE html>")


class TestFmt:
    def test_fmt_to_stdout(self, tmp_path):
        path = tmp_path / "messy.live"
        path.write_text("global   g:number=  4\npage start()\n  render\n    post g\n")
        status, output = run_cli("fmt", str(path))
        assert status == 0
        assert output.startswith("global g : number = 4")

    def test_fmt_in_place(self, tmp_path):
        path = tmp_path / "messy.live"
        path.write_text("global   g:number=4\npage start()\n  render\n    post g\n")
        status, _output = run_cli("fmt", str(path), "-i")
        assert status == 0
        assert path.read_text().startswith("global g : number = 4")

    def test_fmt_reports_syntax_errors(self, tmp_path):
        path = tmp_path / "broken.live"
        path.write_text("page start(\n")
        status, output = run_cli("fmt", str(path))
        assert status == 1 and "error" in output


class TestSaveResume:
    def test_round_trip(self, counter_file, tmp_path):
        image = str(tmp_path / "session.img")
        status, output = run_cli(
            "save", counter_file, "--tap", "count: 0", "-o", image
        )
        assert status == 0 and "saved image" in output
        status, output = run_cli("resume", image)
        assert status == 0 and "count: 1" in output

    def test_resume_with_edited_source(self, counter_file, tmp_path):
        image = str(tmp_path / "session.img")
        run_cli("save", counter_file, "--tap", "count: 0", "-o", image)
        edited = tmp_path / "edited.live"
        edited.write_text(COUNTER.replace('"count: "', '"taps: "'))
        status, output = run_cli(
            "resume", image, "--source", str(edited)
        )
        assert status == 0 and "taps: 1" in output


class TestWebWiring:
    def test_mortgage_runs_via_cli(self, tmp_path):
        from repro.apps.mortgage import BASE_SOURCE

        path = tmp_path / "mortgage.live"
        path.write_text(BASE_SOURCE)
        status, output = run_cli(
            "run", str(path), "--latency", "0.0", "--width", "44"
        )
        assert status == 0
        assert "House" in output and "$" in output


class TestPythonSources:
    """Every source-taking command accepts ``.py`` modules exposing
    ``SOURCE``, the way ``repro trace`` always has."""

    @pytest.fixture
    def quickstart(self):
        from pathlib import Path

        return str(Path(__file__).parent.parent / "examples/quickstart.py")

    def test_run(self, quickstart):
        status, output = run_cli("run", quickstart, "--tap", "count: 0")
        assert status == 0 and "count: 1" in output

    def test_html(self, quickstart):
        status, output = run_cli("html", quickstart)
        assert status == 0 and "count: 0" in output

    def test_probe(self, quickstart):
        status, output = run_cli("probe", quickstart, "count + 1")
        assert status == 0 and "1.0" in output

    def test_save(self, quickstart, tmp_path):
        image = str(tmp_path / "session.img")
        status, output = run_cli("save", quickstart, "-o", image)
        assert status == 0 and "saved image" in output

    def test_module_without_source_is_an_error(self, tmp_path):
        path = tmp_path / "empty.py"
        path.write_text("x = 1\n")
        status, output = run_cli("run", str(path))
        assert status == 1 and "SOURCE" in output


class TestResumeRejection:
    """``resume --source`` reports rejected updates exactly like a live
    ``edit_source`` — formatted diagnostics, the saved code keeps
    running, exit status 1."""

    @pytest.fixture
    def image(self, counter_file, tmp_path):
        path = str(tmp_path / "session.img")
        run_cli("save", counter_file, "--tap", "count: 0", "-o", path)
        return path

    def test_type_error_reported_and_saved_source_resumed(
        self, image, tmp_path
    ):
        edited = tmp_path / "edited.live"
        edited.write_text(
            COUNTER.replace("count := count + 1", 'count := "oops"')
        )
        status, output = run_cli("resume", image, "--source", str(edited))
        assert status == 1
        assert "update rejected (1 problem):" in output
        # The same span-prefixed diagnostic edit_source carries.
        assert "assigning string to global 'count'" in output
        # The last good code keeps running: the image's own source.
        assert "count: 1" in output

    def test_syntax_error_reported(self, image, tmp_path):
        edited = tmp_path / "edited.live"
        edited.write_text("page start(\n")
        status, output = run_cli("resume", image, "--source", str(edited))
        assert status == 1
        assert "update rejected" in output and "count: 1" in output

    def test_diagnostics_match_live_edit_formatting(
        self, image, tmp_path
    ):
        from repro.live.session import LiveSession

        broken = COUNTER.replace("count := count + 1", 'count := "oops"')
        live = LiveSession(COUNTER)
        result = live.edit_source(broken)
        assert result.status == "rejected"
        edited = tmp_path / "edited.live"
        edited.write_text(broken)
        _status, output = run_cli("resume", image, "--source", str(edited))
        for problem in result.problems:
            assert str(problem) in output


class TestServeCLI:
    def test_serve_smoke_over_subprocess(self, counter_file, tmp_path):
        import json
        import os
        import signal
        import subprocess
        import sys
        import time
        import urllib.request

        port_file = tmp_path / "port"
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", counter_file,
                "--port", "0", "--port-file", str(port_file),
                "--pool-size", "2",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        try:
            deadline = time.time() + 30
            while not port_file.exists() and time.time() < deadline:
                assert process.poll() is None, process.stdout.read()
                time.sleep(0.05)
            assert port_file.exists(), "server never wrote its port"
            port = int(port_file.read_text())

            def post(payload):
                request = urllib.request.Request(
                    "http://127.0.0.1:{}/".format(port),
                    data=json.dumps(payload).encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request, timeout=10) as r:
                    return json.loads(r.read())

            token = post({"op": "create"})["token"]
            post({"op": "tap", "token": token, "text": "count: 0"})
            rendered = post({"op": "render", "token": token})
            assert "count: 1" in rendered["html"]
            assert post({"op": "evict", "token": token})["evicted"]
            again = post({"op": "render", "token": token,
                          "generation": rendered["generation"]})
            assert again["not_modified"]
        finally:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                process.kill()
                process.wait()


@pytest.fixture
def counter_journal(tmp_path):
    """A journaled counter session recorded the way ``repro serve``
    records one — the CLI's replay options must reconstruct it."""
    from repro.api import Journal
    from repro.serve.host import SessionHost
    from repro.stdlib.web import make_services, web_host_impls

    journal_dir = str(tmp_path / "journal")
    host = SessionHost(
        default_source=COUNTER,
        make_host_impls=web_host_impls,
        make_services=make_services,
        session_kwargs={
            "reuse_boxes": True, "memo_render": True,
            "fault_policy": "record", "supervised": True,
        },
        journal=Journal(journal_dir, checkpoint_every=3),
    )
    token = host.create()
    for _ in range(5):
        host.tap(token, path=[0])
    return journal_dir


class TestReplayCommand:
    def test_replay_screenshots_the_latest_state(self, counter_journal):
        status, output = run_cli("replay", counter_journal)
        assert status == 0
        assert "replayed" in output and "count: 5" in output

    def test_to_seq_time_travels(self, counter_journal):
        status, output = run_cli("replay", counter_journal, "--to-seq", "3")
        assert status == 0
        assert "seq 3" in output and "count: 2" in output

    def test_no_checkpoint_forces_a_cold_replay(self, counter_journal):
        status, output = run_cli(
            "replay", counter_journal, "--no-checkpoint"
        )
        assert status == 0
        assert "5 events" in output and "checkpoint" not in output

    def test_benign_edit_exits_zero(self, counter_journal, tmp_path):
        edited = tmp_path / "benign.live"
        edited.write_text(
            COUNTER + "\nfun unused(x : number) : number\n  return x\n"
        )
        status, output = run_cli(
            "replay", counter_journal, "--source", str(edited)
        )
        assert status == 0 and "identical" in output

    def test_breaking_edit_exits_one(self, counter_journal, tmp_path):
        edited = tmp_path / "breaking.live"
        edited.write_text(COUNTER.replace("count + 1", "count + 2"))
        status, output = run_cli(
            "replay", counter_journal, "--source", str(edited)
        )
        assert status == 1
        assert "diverged at generation 1" in output

    def test_missing_journal_is_an_error(self, tmp_path):
        status, output = run_cli("replay", str(tmp_path / "nothing"))
        assert status == 1 and "no sessions" in output


class TestWhyCommand:
    def test_why_by_text(self, counter_journal):
        status, output = run_cli(
            "why", counter_journal, "--text", "count: 5"
        )
        assert status == 0
        assert "page start (render)" in output
        assert "count = 5" in output
        assert output.count("wrote count") == 5

    def test_why_by_path(self, counter_journal):
        status, output = run_cli("why", counter_journal, "--path", "0")
        assert status == 0 and "reads:" in output

    def test_bad_path_is_an_error(self, counter_journal):
        status, output = run_cli("why", counter_journal, "--path", "x")
        assert status == 1 and "slash-separated" in output


class TestTraceJournal:
    def test_journal_derived_trace(self, counter_journal):
        status, output = run_cli("trace", "--journal", counter_journal)
        assert status == 0
        assert "journal-derived trace" in output
        assert "5 events replayed" in output
        assert "render" in output  # the span tree is there

    def test_trace_needs_a_file_or_a_journal(self):
        status, output = run_cli("trace")
        assert status == 1
        assert "source file or --journal" in output
