"""Package-level checks: public API surface, version, optional tkinter."""

import importlib

import pytest


class TestPublicApi:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_quickstart_from_docstring(self):
        """The module docstring's quickstart must actually work."""
        from repro import LiveSession
        from repro.apps.counter import SOURCE

        session = LiveSession(SOURCE)
        session.tap_text("count: 0")
        session.replace_text('"count: "', '"n = "')
        assert "n = 1" in session.screenshot()

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.typing",
            "repro.eval",
            "repro.boxes",
            "repro.system",
            "repro.render",
            "repro.surface",
            "repro.live",
            "repro.apps",
            "repro.baselines",
            "repro.metatheory",
            "repro.stdlib",
        ],
    )
    def test_subpackages_import(self, module):
        importlib.import_module(module)


class TestOptionalTk:
    def test_module_imports_without_tkinter(self):
        """ui_tk must be importable headlessly; tkinter loads lazily."""
        import repro.ui_tk as ui_tk

        assert callable(ui_tk.tk_available)

    def test_availability_probe_does_not_raise(self):
        from repro.ui_tk import tk_available

        assert tk_available() in (True, False)
