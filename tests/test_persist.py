"""Session images: save, edit-while-suspended, load (= UPDATE on boot)."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.counter import SOURCE as COUNTER
from repro.core import ast
from repro.core.errors import ReproError
from repro.core.types import NUMBER, STRING, TupleType, list_of, tuple_of
from repro.live.session import LiveSession
from repro.persist import (
    FORMAT,
    load_image,
    save_image,
    save_image_text,
    value_from_data,
    value_to_data,
)


class TestValueSerialization:
    CASES = [
        ast.Num(3.5),
        ast.Str("hello\nworld"),
        ast.Tuple((ast.Num(1), ast.Str("a"))),
        ast.ListLit((ast.Num(1), ast.Num(2)), NUMBER),
        ast.ListLit((), STRING),
        ast.ListLit(
            (ast.Tuple((ast.Str("x"), ast.Num(1))),),
            tuple_of(STRING, NUMBER),
        ),
        ast.UNIT_VALUE,
    ]

    @pytest.mark.parametrize("value", CASES, ids=repr)
    def test_round_trip(self, value):
        data = value_to_data(value)
        json.dumps(data)  # must be JSON-clean
        assert value_from_data(data) == value

    def test_closures_rejected(self):
        from repro.core.effects import PURE

        lam = ast.Lam("x", NUMBER, ast.Var("x"), PURE)
        with pytest.raises(ReproError):
            value_to_data(lam)


class TestImages:
    def test_save_load_round_trip(self):
        session = LiveSession(COUNTER)
        session.tap_text("count: 0")
        session.tap_text("count: 1")
        image = save_image_text(session)

        restored = load_image(image)
        assert restored.runtime.global_value("count") == ast.Num(2)
        assert restored.runtime.all_texts()[0] == "count: 2"
        assert restored.last_restore_report.clean

    def test_page_stack_restored(self):
        source = (
            "page start()\n  render\n    boxed\n      post \"go\"\n"
            "      on tap do\n        push detail(7)\n"
            "page detail(n : number)\n  render\n    post n\n"
        )
        session = LiveSession(source)
        session.tap_text("go")
        restored = load_image(save_image(session))
        assert restored.runtime.page_name() == "detail"
        assert restored.runtime.all_texts() == ["7"]

    def test_edit_while_suspended_applies_fixup(self):
        """Loading into changed code IS an update: Fig. 12 decides."""
        session = LiveSession(COUNTER)
        session.tap_text("count: 0")
        image = save_image(session)
        edited = COUNTER.replace(
            "global count : number = 0",
            'global count : string = "fresh"',
        ).replace("count := count + 1", 'count := "tapped"').replace(
            "count := 0", 'count := ""'
        )
        restored = load_image(image, source=edited)
        assert restored.last_restore_report.dropped_globals == ["count"]
        assert restored.runtime.global_value("count") == ast.Str("fresh")

    def test_stack_entries_dropped_with_their_pages(self):
        source = (
            "page start()\n  render\n    boxed\n      post \"go\"\n"
            "      on tap do\n        push detail(7)\n"
            "page detail(n : number)\n  render\n    post n\n"
        )
        session = LiveSession(source)
        session.tap_text("go")
        image = save_image(session)
        without_detail = (
            "page start()\n  render\n    post \"only start\"\n"
        )
        restored = load_image(image, source=without_detail)
        assert restored.last_restore_report.dropped_pages == ["detail"]
        assert restored.runtime.page_name() == "start"

    def test_init_not_rerun_for_restored_pages(self):
        """Restored pages keep their state; init ran in the original
        session (pushing re-runs it, loading does not)."""
        source = (
            "global boots : number = 0\n"
            "page start()\n  init\n    boots := boots + 1\n"
            "  render\n    post boots\n"
        )
        session = LiveSession(source)
        assert session.runtime.global_value("boots") == ast.Num(1)
        restored = load_image(save_image(session))
        # The restored session booted once itself (boots := 2 during its
        # own construction) but the restore then re-imposed the saved
        # store, so the image's value wins.
        assert restored.runtime.global_value("boots") == ast.Num(1)

    def test_format_guard(self):
        with pytest.raises(ReproError):
            load_image({"format": "something-else"})

    def test_image_is_plain_json(self):
        session = LiveSession(COUNTER)
        parsed = json.loads(save_image_text(session))
        assert parsed["format"] == FORMAT
        assert "source" in parsed


class TestEditWhileSuspendedProperty:
    """Eviction is save/resume, so editing a suspended session must be a
    live UPDATE: for random function-free store values, loading a saved
    image under edited code applies the Fig. 12 fix-up *identically* to
    ``edit_source`` on a running session — same drops, same store, same
    stack, same rendered HTML.
    """

    SOURCE_A = (
        "global g_num : number = 1\n"
        'global g_str : string = "a"\n'
        "global g_list : list number = [1]\n"
        "page start()\n"
        "  render\n"
        '    post "A: " || g_num\n'
    )
    # The edit: g_str is retyped, g_ghost is new, the render changes.
    SOURCE_B = (
        "global g_num : number = 1\n"
        "global g_str : number = 9\n"
        "global g_list : list number = [1]\n"
        "global g_ghost : string = \"new\"\n"
        "page start()\n"
        "  render\n"
        '    post "B: " || g_num || g_ghost\n'
    )

    @staticmethod
    def _prepared_session(injected):
        session = LiveSession(TestEditWhileSuspendedProperty.SOURCE_A)
        store = session.runtime.system.state.store
        for name, value in injected:
            store.assign(name, value)
        return session

    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.data())
    def test_rehydrate_under_new_source_equals_live_update(self, data):
        from repro.metatheory.generators import (
            function_free_types,
            values_of,
        )
        from repro.render.html_backend import render_html

        # Random function-free values poked into the saved store under
        # the names SOURCE_B declares (plus one it does not): each is
        # kept by the fix-up iff its type matches B's declaration, and
        # both restore paths must agree on every single one.
        injected = []
        for name in ("g_num", "g_str", "g_list", "g_stale"):
            type_ = data.draw(function_free_types(), label=name)
            injected.append((name, data.draw(values_of(type_))))

        live = self._prepared_session(injected)
        result = live.edit_source(self.SOURCE_B)
        assert result.applied, result.problems

        suspended = self._prepared_session(injected)
        image = json.loads(json.dumps(save_image(suspended)))
        restored = load_image(image, source=self.SOURCE_B)
        report = restored.last_restore_report

        assert sorted(report.dropped_globals) == sorted(
            result.report.dropped_globals
        )
        assert report.dropped_pages == result.report.dropped_pages
        live_state = live.runtime.system.state
        restored_state = restored.runtime.system.state
        assert dict(restored_state.store.items()) == dict(
            live_state.store.items()
        )
        assert restored_state.stack == live_state.stack
        assert render_html(restored.display) == render_html(live.display)
