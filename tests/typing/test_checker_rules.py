"""Expression typing, rule by rule (Fig. 10).

Each class covers one rule with derivable and non-derivable cases; the
negative cases also assert the *rule name* in the diagnostic, so the
checker provably rejects for the right reason.
"""

import pytest

from repro.core import ast
from repro.core.defs import Code, FunDef, GlobalDef, PageDef
from repro.core.effects import PURE, RENDER, STATE
from repro.core.errors import EffectProblem, TypeProblem
from repro.core.types import (
    FunType,
    NUMBER,
    STRING,
    UNIT,
    fun,
    list_of,
    tuple_of,
)
from repro.typing.checker import check
from repro.typing.context import TypeEnv

GLOBAL_G = GlobalDef("g", NUMBER, ast.Num(0))
FUN_INC = FunDef(
    "inc",
    fun(NUMBER, NUMBER, PURE),
    ast.Lam("x", NUMBER, ast.Prim("add", (ast.Var("x"), ast.Num(1))), PURE),
)
PAGE_P = PageDef(
    "p",
    NUMBER,
    ast.Lam("a", NUMBER, ast.UNIT_VALUE, STATE),
    ast.Lam("a", NUMBER, ast.UNIT_VALUE, RENDER),
)
CODE = Code([GLOBAL_G, FUN_INC, PAGE_P])


def check_in(expr, effect=PURE, env=None):
    return check(CODE, expr, effect=effect, env=env)


def rejected(expr, effect=PURE, env=None, rule=None, effect_problem=False):
    expected = EffectProblem if effect_problem else TypeProblem
    with pytest.raises(expected) as caught:
        check_in(expr, effect=effect, env=env)
    if rule is not None:
        assert caught.value.rule == rule
    return caught.value


class TestLiteralsAndVars:
    def test_t_int(self):
        assert check_in(ast.Num(3)) == NUMBER

    def test_t_string(self):
        assert check_in(ast.Str("x")) == STRING

    def test_t_var(self):
        env = TypeEnv.empty().extend("x", STRING)
        assert check_in(ast.Var("x"), env=env) == STRING

    def test_t_var_unbound(self):
        rejected(ast.Var("x"), rule="T-VAR")


class TestTuplesAndProjection:
    def test_t_tuple(self):
        expr = ast.Tuple((ast.Num(1), ast.Str("a")))
        assert check_in(expr) == tuple_of(NUMBER, STRING)

    def test_unit(self):
        assert check_in(ast.UNIT_VALUE) == UNIT

    def test_t_proj(self):
        expr = ast.Proj(ast.Tuple((ast.Num(1), ast.Str("a"))), 2)
        assert check_in(expr) == STRING

    def test_t_proj_out_of_range(self):
        rejected(
            ast.Proj(ast.Tuple((ast.Num(1),)), 2), rule="T-PROJ"
        )

    def test_t_proj_non_tuple(self):
        rejected(ast.Proj(ast.Num(1), 1), rule="T-PROJ")


class TestLambdaAndApplication:
    def test_t_lam_effect_goes_on_arrow(self):
        lam = ast.Lam("x", NUMBER, ast.GlobalWrite("g", ast.Var("x")), STATE)
        assert check_in(lam) == fun(NUMBER, UNIT, STATE)

    def test_t_lam_typable_under_any_outer_effect(self):
        lam = ast.Lam("x", NUMBER, ast.Var("x"), PURE)
        for effect in (PURE, STATE, RENDER):
            assert check_in(lam, effect=effect) == fun(NUMBER, NUMBER, PURE)

    def test_t_lam_body_must_type_under_its_effect(self):
        lam = ast.Lam("x", NUMBER, ast.GlobalWrite("g", ast.Var("x")), PURE)
        rejected(lam, rule="T-ASSIGN", effect_problem=True)

    def test_t_app(self):
        lam = ast.Lam("x", NUMBER, ast.Var("x"), PURE)
        assert check_in(ast.App(lam, ast.Num(1))) == NUMBER

    def test_t_app_argument_mismatch(self):
        lam = ast.Lam("x", NUMBER, ast.Var("x"), PURE)
        rejected(ast.App(lam, ast.Str("no")), rule="T-APP")

    def test_t_app_non_function(self):
        rejected(ast.App(ast.Num(1), ast.Num(2)), rule="T-APP")

    def test_t_sub_pure_function_usable_anywhere(self):
        """T-SUB: a pure arrow lifts to the ambient effect."""
        lam = ast.Lam("x", NUMBER, ast.Var("x"), PURE)
        for effect in (STATE, RENDER):
            assert check_in(ast.App(lam, ast.Num(1)), effect=effect) == NUMBER

    def test_stateful_call_rejected_in_render(self):
        lam = ast.Lam("x", NUMBER, ast.GlobalWrite("g", ast.Var("x")), STATE)
        rejected(
            ast.App(lam, ast.Num(1)), effect=RENDER,
            rule="T-APP", effect_problem=True,
        )

    def test_render_call_rejected_in_state(self):
        lam = ast.Lam("x", NUMBER, ast.Post(ast.Var("x")), RENDER)
        rejected(
            ast.App(lam, ast.Num(1)), effect=STATE,
            rule="T-APP", effect_problem=True,
        )


class TestFunAndGlobals:
    def test_t_fun(self):
        assert check_in(ast.FunRef("inc")) == fun(NUMBER, NUMBER, PURE)

    def test_t_fun_undefined(self):
        rejected(ast.FunRef("nope"), rule="T-FUN")

    def test_t_global_read_any_effect(self):
        for effect in (PURE, STATE, RENDER):
            assert check_in(ast.GlobalRead("g"), effect=effect) == NUMBER

    def test_t_global_undefined(self):
        rejected(ast.GlobalRead("nope"), rule="T-GLOBAL")

    def test_t_assign(self):
        expr = ast.GlobalWrite("g", ast.Num(5))
        assert check_in(expr, effect=STATE) == UNIT

    def test_t_assign_requires_state(self):
        """Render code can only READ globals — the paper's core rule."""
        expr = ast.GlobalWrite("g", ast.Num(5))
        rejected(expr, effect=RENDER, rule="T-ASSIGN", effect_problem=True)
        rejected(expr, effect=PURE, rule="T-ASSIGN", effect_problem=True)

    def test_t_assign_type_mismatch(self):
        rejected(
            ast.GlobalWrite("g", ast.Str("no")), effect=STATE,
            rule="T-ASSIGN",
        )

    def test_t_assign_undefined(self):
        rejected(
            ast.GlobalWrite("nope", ast.Num(1)), effect=STATE,
            rule="T-ASSIGN",
        )


class TestPagesNavigation:
    def test_t_push(self):
        expr = ast.Push("p", ast.Num(1))
        assert check_in(expr, effect=STATE) == UNIT

    def test_t_push_requires_state(self):
        expr = ast.Push("p", ast.Num(1))
        rejected(expr, effect=RENDER, rule="T-PUSH", effect_problem=True)

    def test_t_push_argument_type(self):
        rejected(
            ast.Push("p", ast.Str("no")), effect=STATE, rule="T-PUSH"
        )

    def test_t_push_unknown_page(self):
        rejected(
            ast.Push("nowhere", ast.Num(1)), effect=STATE, rule="T-PUSH"
        )

    def test_t_pop(self):
        assert check_in(ast.Pop(), effect=STATE) == UNIT

    def test_t_pop_requires_state(self):
        rejected(ast.Pop(), effect=RENDER, rule="T-POP", effect_problem=True)


class TestRenderConstructs:
    def test_t_boxed_passes_body_type_through(self):
        expr = ast.Boxed(ast.Num(7))
        assert check_in(expr, effect=RENDER) == NUMBER

    def test_t_boxed_requires_render(self):
        """Handlers and init code cannot produce boxes."""
        rejected(
            ast.Boxed(ast.Num(1)), effect=STATE,
            rule="T-BOXED", effect_problem=True,
        )
        rejected(
            ast.Boxed(ast.Num(1)), effect=PURE,
            rule="T-BOXED", effect_problem=True,
        )

    def test_t_post(self):
        assert check_in(ast.Post(ast.Str("x")), effect=RENDER) == UNIT

    def test_t_post_accepts_any_type(self):
        assert check_in(ast.Post(ast.Num(1)), effect=RENDER) == UNIT
        assert (
            check_in(ast.Post(ast.Tuple((ast.Num(1),))), effect=RENDER)
            == UNIT
        )

    def test_t_post_requires_render(self):
        rejected(
            ast.Post(ast.Num(1)), effect=STATE,
            rule="T-POST", effect_problem=True,
        )

    def test_t_attr_margin_number(self):
        expr = ast.SetAttr("margin", ast.Num(2))
        assert check_in(expr, effect=RENDER) == UNIT

    def test_t_attr_ontap_handler_type(self):
        handler = ast.Lam("u", UNIT, ast.GlobalWrite("g", ast.Num(1)), STATE)
        expr = ast.SetAttr("ontap", handler)
        assert check_in(expr, effect=RENDER) == UNIT

    def test_t_attr_pure_handler_accepted_by_subtyping(self):
        handler = ast.Lam("u", UNIT, ast.UNIT_VALUE, PURE)
        assert check_in(ast.SetAttr("ontap", handler), effect=RENDER) == UNIT

    def test_t_attr_render_handler_rejected(self):
        handler = ast.Lam("u", UNIT, ast.UNIT_VALUE, RENDER)
        rejected(
            ast.SetAttr("ontap", handler), effect=RENDER, rule="T-ATTR"
        )

    def test_t_attr_wrong_value_type(self):
        rejected(
            ast.SetAttr("margin", ast.Str("two")), effect=RENDER,
            rule="T-ATTR",
        )

    def test_t_attr_unknown_attribute(self):
        rejected(
            ast.SetAttr("zorp", ast.Num(1)), effect=RENDER, rule="T-ATTR"
        )

    def test_t_attr_requires_render(self):
        rejected(
            ast.SetAttr("margin", ast.Num(1)), effect=STATE,
            rule="T-ATTR", effect_problem=True,
        )


class TestExtensions:
    def test_t_if(self):
        expr = ast.If(ast.Num(1), ast.Num(2), ast.Num(3))
        assert check_in(expr) == NUMBER

    def test_t_if_condition_must_be_number(self):
        rejected(
            ast.If(ast.Str("no"), ast.Num(1), ast.Num(2)), rule="T-IF"
        )

    def test_t_if_branch_mismatch(self):
        rejected(
            ast.If(ast.Num(1), ast.Num(1), ast.Str("x")), rule="T-IF"
        )

    def test_t_if_joins_branch_effects(self):
        pure_thunk = ast.Lam("u", UNIT, ast.UNIT_VALUE, PURE)
        state_thunk = ast.Lam("u", UNIT, ast.Pop(), STATE)
        expr = ast.If(ast.Num(1), pure_thunk, state_thunk)
        assert check_in(expr) == fun(UNIT, UNIT, STATE)

    def test_t_list(self):
        expr = ast.ListLit((ast.Num(1), ast.Num(2)), NUMBER)
        assert check_in(expr) == list_of(NUMBER)

    def test_t_list_empty_uses_annotation(self):
        assert check_in(ast.ListLit((), STRING)) == list_of(STRING)

    def test_t_list_item_mismatch(self):
        rejected(
            ast.ListLit((ast.Str("x"),), NUMBER), rule="T-LIST"
        )

    def test_t_prim(self):
        expr = ast.Prim("add", (ast.Num(1), ast.Num(2)))
        assert check_in(expr) == NUMBER

    def test_t_prim_unknown(self):
        rejected(ast.Prim("zorp", ()), rule="T-PRIM")

    def test_t_prim_arg_mismatch(self):
        rejected(ast.Prim("add", (ast.Num(1), ast.Str("x"))), rule="T-PRIM")

    def test_t_prim_native_effect_confinement(self):
        """A state-effect native types under s only."""
        from repro.core.prims import PrimSig
        from repro.eval.natives import NativeTable

        natives = NativeTable()
        natives.register(
            PrimSig("fetch", (), NUMBER, STATE), lambda services: 1.0
        )
        expr = ast.Prim("fetch", ())
        assert check(CODE, expr, effect=STATE, natives=natives) == NUMBER
        with pytest.raises(EffectProblem):
            check(CODE, expr, effect=RENDER, natives=natives)
        with pytest.raises(EffectProblem):
            check(CODE, expr, effect=PURE, natives=natives)
