"""The least-upper-bound used by T-IF (branch-type joins under T-SUB)."""

import pytest

from repro.core import ast
from repro.core.defs import Code
from repro.core.effects import PURE, RENDER, STATE
from repro.core.errors import TypeProblem
from repro.core.types import NUMBER, STRING, UNIT, fun, list_of, tuple_of
from repro.typing.checker import _lub, check


class TestLub:
    def test_equal_types(self):
        assert _lub(NUMBER, NUMBER) == NUMBER
        assert _lub(list_of(STRING), list_of(STRING)) == list_of(STRING)

    def test_effect_join_on_arrows(self):
        pure_fn = fun(UNIT, UNIT, PURE)
        state_fn = fun(UNIT, UNIT, STATE)
        assert _lub(pure_fn, state_fn) == state_fn
        assert _lub(state_fn, pure_fn) == state_fn

    def test_incompatible_effects_fail(self):
        state_fn = fun(UNIT, UNIT, STATE)
        render_fn = fun(UNIT, UNIT, RENDER)
        assert _lub(state_fn, render_fn) is None

    def test_unrelated_base_types_fail(self):
        assert _lub(NUMBER, STRING) is None
        assert _lub(tuple_of(NUMBER), tuple_of(STRING)) is None

    def test_nested_arrow_results(self):
        left = fun(NUMBER, fun(UNIT, UNIT, PURE), PURE)
        right = fun(NUMBER, fun(UNIT, UNIT, STATE), PURE)
        joined = _lub(left, right)
        assert joined == fun(NUMBER, fun(UNIT, UNIT, STATE), PURE)


class TestIfUsesLub:
    def test_branches_with_joinable_arrows(self):
        code = Code([])
        expr = ast.If(
            ast.Num(1),
            ast.Lam("u", UNIT, ast.UNIT_VALUE, PURE),
            ast.Lam("u", UNIT, ast.Pop(), STATE),
        )
        assert check(code, expr, effect=PURE) == fun(UNIT, UNIT, STATE)

    def test_branches_with_unjoinable_arrows(self):
        code = Code([])
        expr = ast.If(
            ast.Num(1),
            ast.Lam("u", UNIT, ast.Pop(), STATE),
            ast.Lam("u", UNIT, ast.Post(ast.Num(1)), RENDER),
        )
        with pytest.raises(TypeProblem):
            check(code, expr, effect=PURE)
