"""Program typing C ⊢ C (rules T-C-GLOBAL / T-C-FUN / T-C-PAGE / T-SYS)."""

import pytest

from repro.core import ast
from repro.core.defs import Code, FunDef, GlobalDef, PageDef
from repro.core.effects import PURE, RENDER, STATE
from repro.core.errors import TypeProblem
from repro.core.types import NUMBER, STRING, UNIT, fun, tuple_of
from repro.typing.program import check_code, code_problems, is_well_typed


def blank_page(name="start", arg_type=UNIT):
    return PageDef(
        name,
        arg_type,
        ast.Lam("a", arg_type, ast.UNIT_VALUE, STATE),
        ast.Lam("a", arg_type, ast.UNIT_VALUE, RENDER),
    )


def rules_of(code):
    return [problem.rule for problem in code_problems(code)]


class TestWellTypedPrograms:
    def test_minimal(self):
        assert is_well_typed(Code([blank_page()]))

    def test_full(self):
        code = Code(
            [
                GlobalDef("g", NUMBER, ast.Num(0)),
                FunDef(
                    "f",
                    fun(NUMBER, NUMBER, PURE),
                    ast.Lam("x", NUMBER, ast.Var("x"), PURE),
                ),
                blank_page(),
                blank_page("detail", NUMBER),
            ]
        )
        assert code_problems(code) == []

    def test_check_code_returns_code(self):
        code = Code([blank_page()])
        assert check_code(code) is code


class TestTSys:
    def test_missing_start_page(self):
        code = Code([blank_page("other")])
        assert "T-SYS" in rules_of(code)

    def test_start_page_with_argument_rejected(self):
        """STARTUP pushes [push start ()]; a non-unit start can't boot."""
        code = Code([blank_page("start", NUMBER)])
        assert "T-SYS" in rules_of(code)

    def test_empty_program_rejected(self):
        assert "T-SYS" in rules_of(Code([]))


class TestTCGlobal:
    def test_function_typed_global_rejected(self):
        handler_type = fun(UNIT, UNIT, STATE)
        bad = GlobalDef(
            "h", handler_type, ast.Lam("u", UNIT, ast.UNIT_VALUE, STATE)
        )
        code = Code([bad, blank_page()])
        assert "T-C-GLOBAL" in rules_of(code)

    def test_function_nested_in_tuple_rejected(self):
        nested = tuple_of(NUMBER, fun(UNIT, UNIT, STATE))
        bad = GlobalDef(
            "h",
            nested,
            ast.Tuple(
                (ast.Num(1), ast.Lam("u", UNIT, ast.UNIT_VALUE, STATE))
            ),
        )
        assert not is_well_typed(Code([bad, blank_page()]))

    def test_init_value_type_mismatch(self):
        bad = GlobalDef("g", NUMBER, ast.Str("zero"))
        code = Code([bad, blank_page()])
        assert "T-C-GLOBAL" in rules_of(code)


class TestTCFun:
    def test_body_must_match_declared_type(self):
        bad = FunDef(
            "f",
            fun(NUMBER, STRING, PURE),
            ast.Lam("x", NUMBER, ast.Var("x"), PURE),
        )
        code = Code([bad, blank_page()])
        assert "T-C-FUN" in rules_of(code)

    def test_pure_body_satisfies_stateful_declaration(self):
        """T-SUB at the definition level: p ⊑ s."""
        definition = FunDef(
            "f",
            fun(NUMBER, NUMBER, STATE),
            ast.Lam("x", NUMBER, ast.Var("x"), PURE),
        )
        assert is_well_typed(Code([definition, blank_page()]))

    def test_stateful_body_fails_pure_declaration(self):
        g = GlobalDef("g", NUMBER, ast.Num(0))
        bad = FunDef(
            "f",
            fun(NUMBER, UNIT, PURE),
            ast.Lam("x", NUMBER, ast.GlobalWrite("g", ast.Var("x")), STATE),
        )
        assert not is_well_typed(Code([g, bad, blank_page()]))

    def test_recursion_types(self):
        """Loops are recursion through global functions (Section 4.1)."""
        body = ast.Lam(
            "n",
            NUMBER,
            ast.If(
                ast.Prim("le", (ast.Var("n"), ast.Num(0))),
                ast.Num(0),
                ast.App(
                    ast.FunRef("down"),
                    ast.Prim("sub", (ast.Var("n"), ast.Num(1))),
                ),
            ),
            PURE,
        )
        rec = FunDef("down", fun(NUMBER, NUMBER, PURE), body)
        assert is_well_typed(Code([rec, blank_page()]))


class TestTCPage:
    def test_function_typed_page_argument_rejected(self):
        handler_type = fun(UNIT, UNIT, STATE)
        bad = PageDef(
            "p",
            handler_type,
            ast.Lam("a", handler_type, ast.UNIT_VALUE, STATE),
            ast.Lam("a", handler_type, ast.UNIT_VALUE, RENDER),
        )
        code = Code([blank_page(), bad])
        assert "T-C-PAGE" in rules_of(code)

    def test_init_body_with_render_effect_rejected(self):
        bad = PageDef(
            "start",
            UNIT,
            ast.Lam("a", UNIT, ast.Post(ast.Num(1)), RENDER),
            ast.Lam("a", UNIT, ast.UNIT_VALUE, RENDER),
        )
        assert not is_well_typed(Code([bad]))

    def test_render_body_with_state_effect_rejected(self):
        g = GlobalDef("g", NUMBER, ast.Num(0))
        bad = PageDef(
            "start",
            UNIT,
            ast.Lam("a", UNIT, ast.UNIT_VALUE, STATE),
            ast.Lam("a", UNIT, ast.GlobalWrite("g", ast.Num(1)), STATE),
        )
        assert not is_well_typed(Code([g, bad]))

    def test_render_body_wrong_result_type(self):
        bad = PageDef(
            "start",
            UNIT,
            ast.Lam("a", UNIT, ast.UNIT_VALUE, STATE),
            ast.Lam("a", UNIT, ast.Num(7), RENDER),
        )
        assert not is_well_typed(Code([bad]))


class TestNamespaces:
    def test_native_shadowing_rejected(self):
        from repro.core.prims import PrimSig
        from repro.eval.natives import NativeTable

        natives = NativeTable()
        natives.register(PrimSig("fetch", (), NUMBER, STATE), lambda s: 1.0)
        clash = GlobalDef("fetch", NUMBER, ast.Num(0))
        problems = code_problems(Code([clash, blank_page()]), natives)
        assert any("shadows" in str(p) for p in problems)

    def test_builtin_operator_shadowing_rejected(self):
        clash = GlobalDef("add", NUMBER, ast.Num(0))
        problems = code_problems(Code([clash, blank_page()]))
        assert any("shadows" in str(p) for p in problems)

    def test_all_problems_collected(self):
        code = Code(
            [
                GlobalDef("a", NUMBER, ast.Str("no")),
                GlobalDef("b", NUMBER, ast.Str("no")),
            ]
        )
        problems = code_problems(code)
        assert len(problems) >= 3  # two bad globals + missing start page
