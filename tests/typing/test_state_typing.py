"""System-state typing ⊢ σ (Fig. 11): display, store, stack, queue."""

import pytest

from repro.boxes.tree import Box, STALE, make_root
from repro.core import ast
from repro.core.defs import Code, GlobalDef, PageDef
from repro.core.effects import PURE, RENDER, STATE
from repro.core.errors import TypeProblem
from repro.core.types import NUMBER, STRING, UNIT
from repro.system.events import EventQueue, ExecEvent, PopEvent, PushEvent
from repro.system.state import PageStack, Store, SystemState
from repro.typing.state import (
    check_system,
    display_problems,
    queue_problems,
    stack_problems,
    store_problems,
    system_problems,
)


def blank_page(name="start", arg_type=UNIT):
    return PageDef(
        name,
        arg_type,
        ast.Lam("a", arg_type, ast.UNIT_VALUE, STATE),
        ast.Lam("a", arg_type, ast.UNIT_VALUE, RENDER),
    )


CODE = Code(
    [
        GlobalDef("g", NUMBER, ast.Num(0)),
        blank_page(),
        blank_page("detail", NUMBER),
    ]
)

STATE_HANDLER = ast.Lam("u", UNIT, ast.UNIT_VALUE, STATE)


class TestDisplayTyping:
    def test_stale_display_types(self):
        """T-D-INV: ⊥ is always well-typed."""
        assert display_problems(CODE, STALE) == []

    def test_content_and_attrs(self):
        root = make_root()
        root.append_leaf(ast.Str("hello"))
        child = Box(box_id=1)
        child.append_attr("margin", ast.Num(2))
        child.append_attr("ontap", STATE_HANDLER)
        root.append_child(child)
        assert display_problems(CODE, root.freeze()) == []

    def test_bad_attribute_value(self):
        root = make_root()
        root.append_attr("margin", ast.Str("two"))
        problems = display_problems(CODE, root.freeze())
        assert problems and problems[0].rule == "T-B-ATTR"

    def test_render_effect_handler_rejected(self):
        root = make_root()
        root.append_attr(
            "ontap", ast.Lam("u", UNIT, ast.UNIT_VALUE, RENDER)
        )
        assert display_problems(CODE, root.freeze())

    def test_unknown_attribute(self):
        root = make_root()
        root.append_attr("zorp", ast.Num(1))
        assert display_problems(CODE, root.freeze())


class TestStoreTyping:
    def test_entries_type(self):
        store = Store()
        store.assign("g", ast.Num(5))
        assert store_problems(CODE, store) == []

    def test_strict_requires_declaration(self):
        store = Store()
        store.assign("phantom", ast.Num(1))
        assert store_problems(CODE, store, strict=False) == []
        assert store_problems(CODE, store, strict=True)

    def test_strict_requires_declared_type(self):
        store = Store()
        store.assign("g", ast.Str("five"))
        problems = store_problems(CODE, store, strict=True)
        assert problems and problems[0].rule == "T-S-ENTRY"


class TestStackTyping:
    def test_well_typed_entries(self):
        stack = PageStack()
        stack.push("start", ast.UNIT_VALUE)
        stack.push("detail", ast.Num(3))
        assert stack_problems(CODE, stack) == []

    def test_unknown_page(self):
        stack = PageStack()
        stack.push("ghost", ast.UNIT_VALUE)
        problems = stack_problems(CODE, stack)
        assert problems and problems[0].rule == "T-R-ENTRY"

    def test_argument_type_mismatch(self):
        stack = PageStack()
        stack.push("detail", ast.Str("no"))
        assert stack_problems(CODE, stack)


class TestQueueTyping:
    def test_all_event_kinds(self):
        queue = EventQueue()
        queue.enqueue(ExecEvent(STATE_HANDLER))
        queue.enqueue(PushEvent("detail", ast.Num(1)))
        queue.enqueue(PopEvent())
        assert queue_problems(CODE, queue) == []

    def test_exec_thunk_must_be_unit_to_unit_state(self):
        queue = EventQueue()
        queue.enqueue(ExecEvent(ast.Lam("x", NUMBER, ast.Var("x"), PURE)))
        problems = queue_problems(CODE, queue)
        assert problems and problems[0].rule == "T-Q-EXEC"

    def test_pure_thunk_accepted_by_subtyping(self):
        queue = EventQueue()
        queue.enqueue(ExecEvent(ast.Lam("u", UNIT, ast.UNIT_VALUE, PURE)))
        assert queue_problems(CODE, queue) == []

    def test_push_to_unknown_page(self):
        queue = EventQueue()
        queue.enqueue(PushEvent("ghost", ast.Num(1)))
        problems = queue_problems(CODE, queue)
        assert problems and problems[0].rule == "T-Q-PUSH"

    def test_push_argument_mismatch(self):
        queue = EventQueue()
        queue.enqueue(PushEvent("detail", ast.Str("no")))
        assert queue_problems(CODE, queue)


class TestWholeState:
    def test_initial_state_types(self):
        state = SystemState.initial(CODE)
        assert system_problems(state) == []
        assert check_system(state) is state

    def test_check_system_raises_first(self):
        state = SystemState.initial(CODE)
        state.stack.push("ghost", ast.UNIT_VALUE)
        with pytest.raises(TypeProblem):
            check_system(state)

    def test_code_problems_included(self):
        state = SystemState.initial(Code([]))  # no start page
        assert any(p.rule == "T-SYS" for p in system_problems(state))
